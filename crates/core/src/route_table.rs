//! Fault-aware next-hop route tables for degraded tori.
//!
//! Healthy machines route with the oblivious minimal dimension-order scheme
//! in [`crate::routing`]. When a [`FaultSchedule`](../../anton_fault) takes
//! external links `Down`, minimal dimension-order is no longer total: some
//! minimal path crosses the dead link. This module generates per-slice
//! next-hop tables over the *live* link graph (the Angara-style approach:
//! table-driven routing recomputed from the current topology view):
//!
//! * **Direction-ordered generation** ([`TableMethod::DirectionOrdered`]):
//!   dimensions are still traversed in canonical X, Y, Z order, but the
//!   travel direction around each ring is chosen to avoid down links — the
//!   long way around (up to `k − 1` hops) when the minimal side is severed.
//!   The resulting paths keep the structural shape the n+1-VC promotion
//!   algorithm relies on (one single-direction arc per dimension, at most
//!   one dateline crossing each), so every such table is *certifiable*;
//!   any *single* down link always leaves the other direction of its ring
//!   intact, so single-link failures never need more than this. Note that
//!   certifiable is a per-table-set property, not a family one: the union
//!   of all long-way tables at once is genuinely cyclic on `k ≥ 4` tori
//!   (see `anton_verify::degraded`), so each concrete degradation is
//!   certified explicitly before install.
//! * **BFS fallback** ([`TableMethod::Bfs`]): when some ring is severed in
//!   both directions, a per-destination breadth-first search over the live
//!   graph produces shortest detour paths, preferring hop choices that
//!   minimize dimension-run counts. These may still zig-zag between
//!   dimensions, so they must pass [`RouteTable::validate`] (VC-state
//!   compatibility) and the explicit per-table certification before
//!   install.
//!
//! On a healthy torus the direction-ordered table degenerates to minimal
//! XYZ dimension-order routing exactly — the provably-identical fast path.

use std::fmt;

use crate::chip::ChanId;
use crate::topology::{Dim, NodeCoord, NodeId, Sign, Slice, TorusDir, TorusShape};

/// Encoded next-hop value: `0..6` is a [`TorusDir`] index.
const AT_DEST: u8 = 6;
/// Encoded next-hop value for an unreachable (severed) destination.
const UNREACHABLE: u8 = 7;

/// The set of directed external torus links currently down, as a dense
/// bitset over the canonical link numbering
/// ([`crate::config::MachineConfig::torus_link_index`] layout: `node × 12 +
/// chan.index()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownLinkSet {
    shape: TorusShape,
    down: Vec<bool>,
    count: usize,
}

impl DownLinkSet {
    /// An empty set over the given torus shape.
    pub fn empty(shape: TorusShape) -> DownLinkSet {
        DownLinkSet {
            shape,
            down: vec![false; shape.num_nodes() * crate::chip::NUM_CHAN_ADAPTERS],
            count: 0,
        }
    }

    /// Builds a set from an iterator of `(from, chan)` directed links.
    pub fn from_links(
        shape: TorusShape,
        links: impl IntoIterator<Item = (NodeId, ChanId)>,
    ) -> DownLinkSet {
        let mut set = DownLinkSet::empty(shape);
        for (from, chan) in links {
            set.insert(from, chan);
        }
        set
    }

    #[inline]
    fn index(&self, from: NodeId, chan: ChanId) -> usize {
        from.0 as usize * crate::chip::NUM_CHAN_ADAPTERS + chan.index()
    }

    /// Marks the directed link departing `from` through `chan` as down.
    pub fn insert(&mut self, from: NodeId, chan: ChanId) {
        let idx = self.index(from, chan);
        if !self.down[idx] {
            self.down[idx] = true;
            self.count += 1;
        }
    }

    /// Whether the directed link departing `from` through `chan` is down.
    #[inline]
    pub fn contains(&self, from: NodeId, chan: ChanId) -> bool {
        self.down[self.index(from, chan)]
    }

    /// Whether no links are down.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of down directed links.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// The shape this set is defined over.
    #[inline]
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// Iterates over the down links in canonical index order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, ChanId)> + '_ {
        self.down
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| {
                (
                    NodeId((i / crate::chip::NUM_CHAN_ADAPTERS) as u32),
                    ChanId::from_index(i % crate::chip::NUM_CHAN_ADAPTERS),
                )
            })
    }
}

/// How a route table was generated (and therefore how it must be certified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMethod {
    /// Canonical-order (X, Y, Z) traversal with per-ring direction choice.
    /// Member of the symbolically certified direction-ordered family.
    DirectionOrdered,
    /// Per-destination BFS over the live graph. Requires explicit per-table
    /// certification before install.
    Bfs,
}

impl fmt::Display for TableMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableMethod::DirectionOrdered => write!(f, "direction-ordered"),
            TableMethod::Bfs => write!(f, "bfs"),
        }
    }
}

/// Why a route table is unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteTableError {
    /// No live path exists between the pair (machine partitioned).
    Unreachable {
        /// Source node of the severed pair.
        src: NodeId,
        /// Destination node of the severed pair.
        dst: NodeId,
    },
    /// A path violates the n+1-VC state machine's structural requirements.
    NotVcCompatible {
        /// Source node of the offending path.
        src: NodeId,
        /// Destination node of the offending path.
        dst: NodeId,
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for RouteTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteTableError::Unreachable { src, dst } => {
                write!(f, "no live path from {src} to {dst}")
            }
            RouteTableError::NotVcCompatible { src, dst, reason } => {
                write!(f, "path {src} -> {dst} is not VC-compatible: {reason}")
            }
        }
    }
}

/// A dense per-slice next-hop table: `next_hop(cur, dst)` for every node
/// pair, valid for one torus slice (slices are physically independent
/// networks, so each gets its own table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTable {
    shape: TorusShape,
    slice: Slice,
    method: TableMethod,
    /// `next[dst * n + cur]`: encoded [`TorusDir`] index, [`AT_DEST`], or
    /// [`UNREACHABLE`].
    next: Vec<u8>,
}

impl RouteTable {
    /// The slice this table routes.
    #[inline]
    pub fn slice(&self) -> Slice {
        self.slice
    }

    /// The shape this table routes over.
    #[inline]
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// How this table was generated.
    #[inline]
    pub fn method(&self) -> TableMethod {
        self.method
    }

    #[inline]
    fn entry(&self, cur: NodeId, dst: NodeId) -> u8 {
        self.next[dst.0 as usize * self.shape.num_nodes() + cur.0 as usize]
    }

    /// The next torus direction from `cur` toward `dst`, or `None` when
    /// `cur == dst` (deliver locally).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is unreachable from `cur`; unreachable pairs are
    /// rejected at generation time ([`build_route_table`]) so an installed
    /// table never contains them.
    #[inline]
    pub fn next_hop(&self, cur: NodeId, dst: NodeId) -> Option<TorusDir> {
        match self.entry(cur, dst) {
            AT_DEST => None,
            UNREACHABLE => panic!("route table has no path {cur} -> {dst}"),
            d => Some(TorusDir::from_index(d as usize)),
        }
    }

    /// Whether `dst` is reachable from `cur`.
    #[inline]
    pub fn reachable(&self, cur: NodeId, dst: NodeId) -> bool {
        self.entry(cur, dst) != UNREACHABLE
    }

    /// The first unreachable `(src, dst)` pair, if any.
    pub fn first_unreachable(&self) -> Option<(NodeId, NodeId)> {
        let n = self.shape.num_nodes();
        for dst in 0..n {
            for cur in 0..n {
                if self.next[dst * n + cur] == UNREACHABLE {
                    return Some((NodeId(cur as u32), NodeId(dst as u32)));
                }
            }
        }
        None
    }

    /// The full hop sequence from `src` to `dst`, or `None` if unreachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<Vec<TorusDir>> {
        if !self.reachable(src, dst) {
            return None;
        }
        let mut hops = Vec::new();
        let mut cur = src;
        // Any valid table terminates within 3 maximal arcs; the generous
        // bound below only exists to turn a corrupt table into a panic
        // instead of an infinite loop.
        let bound = 6 * TorusShape::MAX_K as usize;
        while let Some(dir) = self.next_hop(cur, dst) {
            hops.push(dir);
            cur = self
                .shape
                .id(self.shape.neighbor(self.shape.coord(cur), dir));
            assert!(hops.len() <= bound, "route table loops: {src} -> {dst}");
        }
        Some(hops)
    }

    /// Checks every pair's path against the structural requirements of the
    /// n+1-VC promotion state machine: reachable, at most three maximal
    /// same-dimension runs, each run single-direction (a sign flip inside a
    /// run could cross a dateline twice) and shorter than the ring.
    ///
    /// Direction-ordered tables satisfy this by construction; BFS tables
    /// must be checked before they are offered for certification.
    pub fn validate(&self) -> Result<(), RouteTableError> {
        let n = self.shape.num_nodes();
        for dst in 0..n {
            for src in 0..n {
                let (src, dst) = (NodeId(src as u32), NodeId(dst as u32));
                if !self.reachable(src, dst) {
                    return Err(RouteTableError::Unreachable { src, dst });
                }
                let hops = self.checked_path(src, dst)?;
                self.validate_hops(src, dst, &hops)?;
            }
        }
        Ok(())
    }

    /// Like [`RouteTable::path`] but reports a non-terminating walk (a
    /// corrupt or cyclic table) as an error instead of panicking.
    fn checked_path(&self, src: NodeId, dst: NodeId) -> Result<Vec<TorusDir>, RouteTableError> {
        let mut hops = Vec::new();
        let mut cur = src;
        let bound = 6 * TorusShape::MAX_K as usize;
        while let Some(dir) = self.next_hop(cur, dst) {
            hops.push(dir);
            cur = self
                .shape
                .id(self.shape.neighbor(self.shape.coord(cur), dir));
            if hops.len() > bound {
                return Err(RouteTableError::NotVcCompatible {
                    src,
                    dst,
                    reason: "path does not terminate (table cycles)".to_string(),
                });
            }
        }
        Ok(hops)
    }

    fn validate_hops(
        &self,
        src: NodeId,
        dst: NodeId,
        hops: &[TorusDir],
    ) -> Result<(), RouteTableError> {
        let fail = |reason: String| Err(RouteTableError::NotVcCompatible { src, dst, reason });
        let mut runs: Vec<(Dim, Sign, u32)> = Vec::new();
        for h in hops {
            match runs.last_mut() {
                Some((dim, sign, len)) if *dim == h.dim => {
                    if *sign != h.sign {
                        return fail(format!("direction reversal within a {dim} run", dim = dim));
                    }
                    *len += 1;
                }
                _ => runs.push((h.dim, h.sign, 1)),
            }
        }
        if runs.len() > 3 {
            return fail(format!(
                "{} dimension runs exceed the 3-run budget",
                runs.len()
            ));
        }
        for (dim, _, len) in &runs {
            let k = u32::from(self.shape.k(*dim));
            if *len >= k.max(2) {
                return fail(format!("{len}-hop run wraps the {dim}-ring (k={k})"));
            }
        }
        Ok(())
    }
}

/// Builds the route table of one slice over the live link graph.
///
/// Tries direction-ordered generation first (certified as a family); falls
/// back to per-destination BFS when some ring is severed in both directions.
/// Fails only when the down set partitions the slice's network.
pub fn build_route_table(
    shape: &TorusShape,
    slice: Slice,
    downs: &DownLinkSet,
) -> Result<RouteTable, RouteTableError> {
    if let Some(table) = direction_ordered(shape, slice, downs) {
        return Ok(table);
    }
    let table = bfs_table(shape, slice, downs);
    if let Some((src, dst)) = table.first_unreachable() {
        return Err(RouteTableError::Unreachable { src, dst });
    }
    Ok(table)
}

/// Direction-ordered generation: canonical X, Y, Z dimension order with the
/// per-ring travel direction chosen to avoid down links. Returns `None` if
/// any required ring is blocked in both directions.
///
/// The choice is a pure function of `(cur, dst)` and the down set, and it is
/// *stable along its own path*: after one hop in the chosen direction, the
/// remaining blocked/clear structure (the blocked side stays a superset, the
/// clear side a subset) re-selects the same direction, so the per-entry
/// choices compose into consistent loop-free paths.
fn direction_ordered(shape: &TorusShape, slice: Slice, downs: &DownLinkSet) -> Option<RouteTable> {
    let n = shape.num_nodes();
    let mut next = vec![AT_DEST; n * n];
    for dst_id in 0..n {
        let dst = shape.coord(NodeId(dst_id as u32));
        for cur_id in 0..n {
            if cur_id == dst_id {
                continue;
            }
            let cur = shape.coord(NodeId(cur_id as u32));
            let dim = Dim::ALL
                .into_iter()
                .find(|d| cur.get(*d) != dst.get(*d))
                .expect("distinct nodes differ in some dimension");
            let dir = choose_ring_dir(shape, slice, downs, dim, cur, dst)?;
            next[dst_id * n + cur_id] = dir.index() as u8;
        }
    }
    Some(RouteTable {
        shape: *shape,
        slice,
        method: TableMethod::DirectionOrdered,
        next,
    })
}

/// Picks the travel direction along `dim`'s ring from `cur` toward `dst`:
/// the minimal side if every link on it is up (ties prefer `+`, matching
/// [`TorusShape::minimal_offsets`]), otherwise the long way around, or
/// `None` when both sides are blocked.
fn choose_ring_dir(
    shape: &TorusShape,
    slice: Slice,
    downs: &DownLinkSet,
    dim: Dim,
    cur: NodeCoord,
    dst: NodeCoord,
) -> Option<TorusDir> {
    let k = i32::from(shape.k(dim));
    let d_plus = (i32::from(dst.get(dim)) - i32::from(cur.get(dim))).rem_euclid(k);
    debug_assert!(d_plus != 0);
    let d_minus = k - d_plus;
    let clear = |sign: Sign, len: i32| -> bool {
        let dir = TorusDir::new(dim, sign);
        let chan = ChanId { dir, slice };
        let mut c = cur;
        for _ in 0..len {
            if downs.contains(shape.id(c), chan) {
                return false;
            }
            c = shape.neighbor(c, dir);
        }
        true
    };
    let (first, second) = if d_plus <= d_minus {
        ((Sign::Plus, d_plus), (Sign::Minus, d_minus))
    } else {
        ((Sign::Minus, d_minus), (Sign::Plus, d_plus))
    };
    if clear(first.0, first.1) {
        Some(TorusDir::new(dim, first.0))
    } else if clear(second.0, second.1) {
        Some(TorusDir::new(dim, second.0))
    } else {
        None
    }
}

/// BFS fallback: for each destination, a breadth-first search backward over
/// the live link graph yields shortest detour paths. Among the equal-length
/// choices at each node, the hop whose downstream path continues in the
/// same direction is preferred (minimizing the number of dimension runs —
/// the VC-promotion budget allows at most three); remaining ties follow
/// [`TorusDir::ALL`] order, so the table is deterministic.
fn bfs_table(shape: &TorusShape, slice: Slice, downs: &DownLinkSet) -> RouteTable {
    let n = shape.num_nodes();
    let mut next = vec![UNREACHABLE; n * n];
    let mut dist = vec![u32::MAX; n];
    let mut runs_from = vec![u32::MAX; n];
    let mut first_dir: Vec<Option<TorusDir>> = vec![None; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    for dst_id in 0..n {
        // Pass 1: shortest live distance to the destination. Discovery
        // order is nondecreasing in distance.
        dist.fill(u32::MAX);
        dist[dst_id] = 0;
        next[dst_id * n + dst_id] = AT_DEST;
        order.clear();
        queue.clear();
        queue.push_back(NodeId(dst_id as u32));
        while let Some(v) = queue.pop_front() {
            let vc = shape.coord(v);
            for dir in TorusDir::ALL {
                // `u --dir--> v`, so u sits one hop *opposite* of v; the
                // link that must be up departs u through `dir`.
                let u = shape.id(shape.neighbor(vc, dir.opposite()));
                if u == v || dist[u.0 as usize] != u32::MAX {
                    continue;
                }
                if downs.contains(u, ChanId { dir, slice }) {
                    continue;
                }
                dist[u.0 as usize] = dist[v.0 as usize] + 1;
                order.push(u);
                queue.push_back(u);
            }
        }
        // Pass 2: walking outward by distance, pick each node's next hop
        // among its shortest-path successors to minimize the downstream
        // run count (a hop extends the successor's first run when it
        // continues in the same direction).
        runs_from[dst_id] = 0;
        first_dir[dst_id] = None;
        for &u in &order {
            let ucoord = shape.coord(u);
            let mut best: Option<(u32, TorusDir)> = None;
            for dir in TorusDir::ALL {
                if downs.contains(u, ChanId { dir, slice }) {
                    continue;
                }
                let w = shape.id(shape.neighbor(ucoord, dir));
                if w == u || dist[w.0 as usize] != dist[u.0 as usize] - 1 {
                    continue;
                }
                let runs =
                    runs_from[w.0 as usize] + u32::from(first_dir[w.0 as usize] != Some(dir));
                if best.is_none_or(|(b, _)| runs < b) {
                    best = Some((runs, dir));
                }
            }
            let (runs, dir) = best.expect("discovered node has a shortest-path successor");
            next[dst_id * n + u.0 as usize] = dir.index() as u8;
            runs_from[u.0 as usize] = runs;
            first_dir[u.0 as usize] = Some(dir);
        }
    }
    RouteTable {
        shape: *shape,
        slice,
        method: TableMethod::Bfs,
        next,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{DimOrder, RouteSpec};

    fn chan(dim: Dim, sign: Sign, slice: Slice) -> ChanId {
        ChanId {
            dir: TorusDir::new(dim, sign),
            slice,
        }
    }

    #[test]
    fn healthy_table_is_minimal_xyz_dimension_order() {
        let shape = TorusShape::new(4, 3, 2);
        let downs = DownLinkSet::empty(shape);
        let table = build_route_table(&shape, Slice(0), &downs).unwrap();
        assert_eq!(table.method(), TableMethod::DirectionOrdered);
        for src in shape.nodes() {
            for dst in shape.nodes() {
                let want =
                    RouteSpec::deterministic(&shape, src, dst, DimOrder::XYZ, Slice(0)).hops();
                let got = table.path(shape.id(src), shape.id(dst)).unwrap();
                assert_eq!(got, want, "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn every_single_link_failure_stays_direction_ordered() {
        let shape = TorusShape::cube(3);
        for slice in Slice::ALL {
            for (from, down_chan) in
                (0..shape.num_nodes() * crate::chip::NUM_CHAN_ADAPTERS).map(|i| {
                    (
                        NodeId((i / crate::chip::NUM_CHAN_ADAPTERS) as u32),
                        ChanId::from_index(i % crate::chip::NUM_CHAN_ADAPTERS),
                    )
                })
            {
                if down_chan.slice != slice {
                    continue;
                }
                let downs = DownLinkSet::from_links(shape, [(from, down_chan)]);
                let table = build_route_table(&shape, slice, &downs).unwrap();
                assert_eq!(table.method(), TableMethod::DirectionOrdered);
                table.validate().unwrap();
                // No path may traverse the down link.
                for src in shape.nodes() {
                    for dst in shape.nodes() {
                        let mut cur = src;
                        for hop in table.path(shape.id(src), shape.id(dst)).unwrap() {
                            assert!(
                                !(shape.id(cur) == from && hop == down_chan.dir),
                                "path {src}->{dst} crosses down link {from}/{down_chan}"
                            );
                            cur = shape.neighbor(cur, hop);
                        }
                        assert_eq!(cur, dst);
                    }
                }
            }
        }
    }

    #[test]
    fn long_way_around_taken_when_minimal_side_is_down() {
        let shape = TorusShape::cube(8);
        // Minimal route 1 -> 3 along +X; kill the link departing node (2,0,0)
        // in +X, forcing the 6-hop detour through the -X side.
        let bad = shape.id(NodeCoord::new(2, 0, 0));
        let downs = DownLinkSet::from_links(shape, [(bad, chan(Dim::X, Sign::Plus, Slice(0)))]);
        let table = build_route_table(&shape, Slice(0), &downs).unwrap();
        let src = shape.id(NodeCoord::new(1, 0, 0));
        let dst = shape.id(NodeCoord::new(3, 0, 0));
        let path = table.path(src, dst).unwrap();
        assert_eq!(path.len(), 6, "long way around: {path:?}");
        assert!(path
            .iter()
            .all(|h| *h == TorusDir::new(Dim::X, Sign::Minus)));
        table.validate().unwrap();
    }

    #[test]
    fn other_slice_unaffected_by_down_link() {
        let shape = TorusShape::cube(4);
        let bad = shape.id(NodeCoord::new(0, 0, 0));
        let downs = DownLinkSet::from_links(shape, [(bad, chan(Dim::X, Sign::Plus, Slice(0)))]);
        let healthy = build_route_table(&shape, Slice(1), &DownLinkSet::empty(shape)).unwrap();
        let degraded = build_route_table(&shape, Slice(1), &downs).unwrap();
        assert_eq!(healthy, degraded);
    }

    #[test]
    fn severed_ring_falls_back_to_bfs() {
        let shape = TorusShape::new(4, 4, 1);
        // Block travel out of the y=0 x-ring's node 0 toward node 2 in both
        // rotations: +X out of x=1 and -X out of x=3. The pair (0,0) ->
        // (2,0) is then blocked clockwise *and* counterclockwise, so
        // direction-ordered generation fails and BFS detours through y.
        let downs = DownLinkSet::from_links(
            shape,
            [
                (
                    shape.id(NodeCoord::new(1, 0, 0)),
                    chan(Dim::X, Sign::Plus, Slice(0)),
                ),
                (
                    shape.id(NodeCoord::new(3, 0, 0)),
                    chan(Dim::X, Sign::Minus, Slice(0)),
                ),
            ],
        );
        let table = build_route_table(&shape, Slice(0), &downs).unwrap();
        assert_eq!(table.method(), TableMethod::Bfs);
        let src = shape.id(NodeCoord::new(0, 0, 0));
        let dst = shape.id(NodeCoord::new(2, 0, 0));
        let path = table.path(src, dst).unwrap();
        assert!(
            path.iter().any(|h| h.dim == Dim::Y),
            "must detour: {path:?}"
        );
        let mut cur = NodeCoord::new(0, 0, 0);
        for hop in &path {
            cur = shape.neighbor(cur, *hop);
        }
        assert_eq!(cur, NodeCoord::new(2, 0, 0));
    }

    #[test]
    fn partitioned_network_reports_unreachable() {
        let shape = TorusShape::new(2, 1, 1);
        // Two nodes, one x-ring consisting of the +/- link pair in each
        // direction; kill every link departing node 0 on slice 0.
        let n0 = NodeId(0);
        let downs = DownLinkSet::from_links(
            shape,
            [
                (n0, chan(Dim::X, Sign::Plus, Slice(0))),
                (n0, chan(Dim::X, Sign::Minus, Slice(0))),
            ],
        );
        let err = build_route_table(&shape, Slice(0), &downs).unwrap_err();
        match err {
            RouteTableError::Unreachable { src, dst } => {
                assert_eq!((src, dst), (NodeId(0), NodeId(1)));
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_direction_reversal() {
        // Hand-craft a table whose path flips sign inside an X run.
        let shape = TorusShape::cube(4);
        let n = shape.num_nodes();
        let mut table = build_route_table(&shape, Slice(0), &DownLinkSet::empty(shape)).unwrap();
        let src = shape.id(NodeCoord::new(0, 0, 0));
        let via = shape.id(NodeCoord::new(1, 0, 0));
        let dst = shape.id(NodeCoord::new(0, 0, 1));
        // 0 -> +X -> 1 -> -X -> 0 -> ... : reversal.
        table.next[dst.0 as usize * n + src.0 as usize] =
            TorusDir::new(Dim::X, Sign::Plus).index() as u8;
        table.next[dst.0 as usize * n + via.0 as usize] =
            TorusDir::new(Dim::X, Sign::Minus).index() as u8;
        let err = table.validate().unwrap_err();
        match err {
            // A within-run sign flip revisits a node, so the walk never
            // terminates; the checked walker reports the cycle.
            RouteTableError::NotVcCompatible { reason, .. } => {
                assert!(
                    reason.contains("reversal") || reason.contains("terminate"),
                    "{reason}"
                );
            }
            other => panic!("expected NotVcCompatible, got {other:?}"),
        }
    }

    #[test]
    fn down_link_set_roundtrip() {
        let shape = TorusShape::cube(4);
        let mut set = DownLinkSet::empty(shape);
        assert!(set.is_empty());
        let l0 = (NodeId(3), chan(Dim::Y, Sign::Minus, Slice(1)));
        let l1 = (NodeId(7), chan(Dim::Z, Sign::Plus, Slice(0)));
        set.insert(l0.0, l0.1);
        set.insert(l0.0, l0.1); // idempotent
        set.insert(l1.0, l1.1);
        assert_eq!(set.len(), 2);
        assert!(set.contains(l0.0, l0.1));
        assert!(!set.contains(NodeId(3), chan(Dim::Y, Sign::Plus, Slice(1))));
        let links: Vec<_> = set.iter().collect();
        assert_eq!(links, vec![l0, l1]);
    }
}
