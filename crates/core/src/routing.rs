//! Inter-node routing (Section 2.3).
//!
//! Unicast routing is oblivious: packets follow a minimal dimension-order
//! route through the torus, and each packet may use any of the six possible
//! dimension orders (XYZ, XZY, YXZ, YZX, ZXY, ZYX) on either of the two
//! torus slices. A packet's dimension order and slice are typically
//! randomized, independent of network load.

use std::fmt;

use rand::Rng;

use crate::topology::{Dim, NodeCoord, Sign, Slice, TorusDir, TorusShape};

/// One of the six dimension orders a packet may route in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimOrder([Dim; 3]);

impl DimOrder {
    /// All six dimension orders, XYZ first.
    pub const ALL: [DimOrder; 6] = [
        DimOrder([Dim::X, Dim::Y, Dim::Z]),
        DimOrder([Dim::X, Dim::Z, Dim::Y]),
        DimOrder([Dim::Y, Dim::X, Dim::Z]),
        DimOrder([Dim::Y, Dim::Z, Dim::X]),
        DimOrder([Dim::Z, Dim::X, Dim::Y]),
        DimOrder([Dim::Z, Dim::Y, Dim::X]),
    ];

    /// Canonical XYZ order.
    pub const XYZ: DimOrder = DimOrder([Dim::X, Dim::Y, Dim::Z]);

    /// Creates a dimension order from a permutation of the three dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is not a permutation of X, Y, Z.
    pub fn new(dims: [Dim; 3]) -> DimOrder {
        for d in Dim::ALL {
            assert!(dims.contains(&d), "dimension order missing {d}");
        }
        DimOrder(dims)
    }

    /// The ordered dimensions.
    #[inline]
    pub fn dims(&self) -> [Dim; 3] {
        self.0
    }

    /// Position (0..3) at which `dim` is routed.
    #[inline]
    pub fn position(&self, dim: Dim) -> usize {
        self.0
            .iter()
            .position(|&d| d == dim)
            .expect("order contains all dims")
    }

    /// A uniformly random dimension order.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> DimOrder {
        Self::ALL[rng.gen_range(0..6)]
    }
}

impl fmt::Display for DimOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.0[0], self.0[1], self.0[2])
    }
}

/// The inter-node routing state a packet carries: its dimension order, torus
/// slice, and the remaining signed offset along each dimension.
///
/// The offsets are indexed by canonical dimension (X=0, Y=1, Z=2) and count
/// the *remaining* hops with their direction of travel. The route is minimal
/// by construction; ties between the two minimal directions (offset exactly
/// `k/2`) are broken at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteSpec {
    /// Order in which the torus dimensions are traversed.
    pub order: DimOrder,
    /// Torus slice used for the packet's entire route.
    pub slice: Slice,
    /// Remaining signed offsets, indexed by canonical dimension.
    pub offsets: [i32; 3],
}

impl RouteSpec {
    /// Builds a route spec with explicit order and slice, breaking minimal
    /// ties toward the positive direction.
    pub fn deterministic(
        shape: &TorusShape,
        src: NodeCoord,
        dst: NodeCoord,
        order: DimOrder,
        slice: Slice,
    ) -> RouteSpec {
        RouteSpec {
            order,
            slice,
            offsets: shape.minimal_offsets(src, dst),
        }
    }

    /// Builds a fully randomized route spec: random dimension order, random
    /// slice, and random choice between tied minimal directions — the default
    /// unicast policy of the Anton 2 network.
    pub fn randomized<R: Rng + ?Sized>(
        shape: &TorusShape,
        src: NodeCoord,
        dst: NodeCoord,
        rng: &mut R,
    ) -> RouteSpec {
        let order = DimOrder::random(rng);
        let slice = Slice(rng.gen_range(0..2));
        Self::randomized_with(shape, src, dst, order, slice, rng)
    }

    /// Builds a route spec with the given order and slice but randomized
    /// minimal tie-breaks.
    pub fn randomized_with<R: Rng + ?Sized>(
        shape: &TorusShape,
        src: NodeCoord,
        dst: NodeCoord,
        order: DimOrder,
        slice: Slice,
        rng: &mut R,
    ) -> RouteSpec {
        let mut offsets = [0i32; 3];
        for dim in Dim::ALL {
            let choices = shape.minimal_offset_choices(dim, src, dst);
            let pick = if choices.len() == 1 {
                choices[0]
            } else {
                choices[rng.gen_range(0..2)]
            };
            offsets[dim.index()] = pick;
        }
        RouteSpec {
            order,
            slice,
            offsets,
        }
    }

    /// The next torus direction the packet must travel, or `None` if all
    /// inter-node routing is complete.
    pub fn next_dir(&self) -> Option<TorusDir> {
        for dim in self.order.dims() {
            let off = self.offsets[dim.index()];
            if off != 0 {
                let sign = if off > 0 { Sign::Plus } else { Sign::Minus };
                return Some(TorusDir::new(dim, sign));
            }
        }
        None
    }

    /// Records one torus hop in direction `dir`, consuming one offset unit.
    ///
    /// Returns `true` if the hop *finished* its dimension (the offset reached
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if `dir` is not the direction returned by
    /// [`RouteSpec::next_dir`].
    pub fn take_hop(&mut self, dir: TorusDir) -> bool {
        assert_eq!(self.next_dir(), Some(dir), "hop taken out of route order");
        let off = &mut self.offsets[dir.dim.index()];
        *off -= dir.sign.delta();
        *off == 0
    }

    /// Total remaining inter-node hops.
    pub fn remaining_hops(&self) -> u32 {
        self.offsets.iter().map(|o| o.unsigned_abs()).sum()
    }

    /// The full sequence of torus hops this spec will take.
    pub fn hops(&self) -> Vec<TorusDir> {
        let mut spec = *self;
        let mut out = Vec::with_capacity(spec.remaining_hops() as usize);
        while let Some(d) = spec.next_dir() {
            spec.take_hop(d);
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dim_orders_distinct() {
        let set: std::collections::HashSet<_> = DimOrder::ALL.iter().collect();
        assert_eq!(set.len(), 6);
        for o in DimOrder::ALL {
            assert_eq!(o.position(o.dims()[0]), 0);
            assert_eq!(o.position(o.dims()[2]), 2);
        }
    }

    #[test]
    fn route_follows_order_and_is_minimal() {
        let shape = TorusShape::cube(8);
        let src = NodeCoord::new(1, 2, 3);
        let dst = NodeCoord::new(6, 2, 0);
        for order in DimOrder::ALL {
            let spec = RouteSpec::deterministic(&shape, src, dst, order, Slice(0));
            let hops = spec.hops();
            assert_eq!(hops.len() as u32, shape.min_hops(src, dst));
            // Dimensions appear in order, each contiguous.
            let dims: Vec<Dim> = hops.iter().map(|h| h.dim).collect();
            let mut seen = Vec::new();
            for d in dims {
                if seen.last() != Some(&d) {
                    assert!(!seen.contains(&d), "dimension {d} revisited");
                    seen.push(d);
                }
            }
            let mut rank = 0;
            for d in seen {
                let p = order.position(d);
                assert!(p >= rank);
                rank = p;
            }
        }
    }

    #[test]
    fn hops_end_at_destination() {
        let shape = TorusShape::new(8, 4, 2);
        let mut rng = StdRng::seed_from_u64(7);
        for src in shape.nodes() {
            for dst in shape.nodes() {
                let spec = RouteSpec::randomized(&shape, src, dst, &mut rng);
                let mut cur = src;
                for hop in spec.hops() {
                    cur = shape.neighbor(cur, hop);
                }
                assert_eq!(cur, dst, "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn tie_breaks_randomize() {
        let shape = TorusShape::cube(8);
        let src = NodeCoord::new(0, 0, 0);
        let dst = NodeCoord::new(4, 0, 0); // distance exactly k/2
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_plus = false;
        let mut saw_minus = false;
        for _ in 0..64 {
            let spec = RouteSpec::randomized(&shape, src, dst, &mut rng);
            match spec.offsets[0].signum() {
                1 => saw_plus = true,
                -1 => saw_minus = true,
                _ => panic!("zero offset for distinct nodes"),
            }
        }
        assert!(saw_plus && saw_minus, "tie-break never flipped");
    }

    #[test]
    #[should_panic(expected = "out of route order")]
    fn take_hop_enforces_order() {
        let shape = TorusShape::cube(4);
        let mut spec = RouteSpec::deterministic(
            &shape,
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(1, 1, 0),
            DimOrder::XYZ,
            Slice(0),
        );
        // Y hop before the X offset is exhausted.
        spec.take_hop(TorusDir::new(Dim::Y, Sign::Plus));
    }
}
