//! Inter-node topology: the three-dimensional, channel-sliced torus.
//!
//! Anton 2 machines interconnect their ASICs in a 3D torus whose dimensions
//! are called X, Y, and Z (Section 2.2 of the paper). The torus is
//! *channel-sliced*: two physical channels (slice 0 and slice 1) connect each
//! node to each of its six neighbors, and a packet uses a single slice for its
//! entire route.

use std::fmt;

/// A torus dimension (X, Y, or Z).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// The X dimension. On-chip, X channels are split across the two I/O
    /// edges of the ASIC and through-traffic uses the skip channels.
    X,
    /// The Y dimension.
    Y,
    /// The Z dimension.
    Z,
}

impl Dim {
    /// All three torus dimensions, in canonical X, Y, Z order.
    pub const ALL: [Dim; 3] = [Dim::X, Dim::Y, Dim::Z];

    /// Index of this dimension in canonical order (X → 0, Y → 1, Z → 2).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dim::X => 0,
            Dim::Y => 1,
            Dim::Z => 2,
        }
    }

    /// Dimension with the given canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 3`.
    #[inline]
    pub fn from_index(idx: usize) -> Dim {
        Dim::ALL[idx]
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::X => write!(f, "X"),
            Dim::Y => write!(f, "Y"),
            Dim::Z => write!(f, "Z"),
        }
    }
}

/// Direction of travel along a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Increasing coordinate (with wraparound).
    Plus,
    /// Decreasing coordinate (with wraparound).
    Minus,
}

impl Sign {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }

    /// `+1` for [`Sign::Plus`], `-1` for [`Sign::Minus`].
    #[inline]
    pub fn delta(self) -> i32 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// A directed torus channel direction: one of X±, Y±, Z±.
///
/// Following the paper's convention, a bidirectional torus link is labeled by
/// the direction of packets *departing* the ASIC on it, so a packet traveling
/// in the `-Y` direction arrives at each node on that node's `Y+` channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TorusDir {
    /// The torus dimension of travel.
    pub dim: Dim,
    /// The direction of travel along that dimension.
    pub sign: Sign,
}

impl TorusDir {
    /// All six directed torus directions in canonical order
    /// (X+, X−, Y+, Y−, Z+, Z−).
    pub const ALL: [TorusDir; 6] = [
        TorusDir {
            dim: Dim::X,
            sign: Sign::Plus,
        },
        TorusDir {
            dim: Dim::X,
            sign: Sign::Minus,
        },
        TorusDir {
            dim: Dim::Y,
            sign: Sign::Plus,
        },
        TorusDir {
            dim: Dim::Y,
            sign: Sign::Minus,
        },
        TorusDir {
            dim: Dim::Z,
            sign: Sign::Plus,
        },
        TorusDir {
            dim: Dim::Z,
            sign: Sign::Minus,
        },
    ];

    /// Creates a directed torus direction.
    #[inline]
    pub fn new(dim: Dim, sign: Sign) -> TorusDir {
        TorusDir { dim, sign }
    }

    /// Canonical index 0..6 (X+ → 0, X− → 1, Y+ → 2, ...).
    #[inline]
    pub fn index(self) -> usize {
        self.dim.index() * 2 + if self.sign == Sign::Plus { 0 } else { 1 }
    }

    /// Direction with the given canonical index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 6`.
    #[inline]
    pub fn from_index(idx: usize) -> TorusDir {
        Self::ALL[idx]
    }

    /// The direction with the same dimension and opposite sign.
    #[inline]
    pub fn opposite(self) -> TorusDir {
        TorusDir {
            dim: self.dim,
            sign: self.sign.flip(),
        }
    }
}

impl fmt::Display for TorusDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dim, self.sign)
    }
}

/// A torus slice (0 or 1).
///
/// The inter-node network is channel-sliced: there are two physical channels
/// to each neighbor and a packet uses a single slice for its entire route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Slice(pub u8);

impl Slice {
    /// Both slices.
    pub const ALL: [Slice; 2] = [Slice(0), Slice(1)];
}

impl fmt::Display for Slice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The shape of the 3D torus: number of nodes along each dimension.
///
/// Anton 2 supports machine configurations from 4×4×1 up to 16×16×16
/// (Section 2.2). This reproduction accepts any shape with 1..=16 nodes per
/// dimension; dimensions of size 1 or 2 carry no wraparound ambiguity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusShape {
    k: [u8; 3],
}

impl TorusShape {
    /// Maximum supported nodes along one dimension.
    pub const MAX_K: u8 = 16;

    /// Creates a torus shape with `kx × ky × kz` nodes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or exceeds [`TorusShape::MAX_K`].
    pub fn new(kx: u8, ky: u8, kz: u8) -> TorusShape {
        for (name, k) in [("kx", kx), ("ky", ky), ("kz", kz)] {
            assert!(
                (1..=Self::MAX_K).contains(&k),
                "torus dimension {name}={k} out of range 1..={}",
                Self::MAX_K
            );
        }
        TorusShape { k: [kx, ky, kz] }
    }

    /// Creates a cubic `k × k × k` torus.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds [`TorusShape::MAX_K`].
    pub fn cube(k: u8) -> TorusShape {
        TorusShape::new(k, k, k)
    }

    /// Number of nodes along dimension `dim`.
    #[inline]
    pub fn k(&self, dim: Dim) -> u8 {
        self.k[dim.index()]
    }

    /// Total number of nodes in the machine.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.k.iter().map(|&k| k as usize).product()
    }

    /// Iterator over all node coordinates in linear-id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeCoord> + '_ {
        let shape = *self;
        (0..self.num_nodes()).map(move |id| shape.coord(NodeId(id as u32)))
    }

    /// Linear id of a node coordinate (x-major, then y, then z).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside this shape.
    #[inline]
    pub fn id(&self, c: NodeCoord) -> NodeId {
        assert!(self.contains(c), "coordinate {c} outside torus {self:?}");
        let [kx, ky, _] = self.k;
        NodeId(c.x as u32 + (kx as u32) * (c.y as u32 + (ky as u32) * c.z as u32))
    }

    /// Coordinate of a node id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn coord(&self, id: NodeId) -> NodeCoord {
        assert!(
            (id.0 as usize) < self.num_nodes(),
            "node id {id:?} out of range"
        );
        let [kx, ky, _] = self.k;
        let x = id.0 % kx as u32;
        let y = (id.0 / kx as u32) % ky as u32;
        let z = id.0 / (kx as u32 * ky as u32);
        NodeCoord {
            x: x as u8,
            y: y as u8,
            z: z as u8,
        }
    }

    /// Whether the coordinate lies inside the shape.
    #[inline]
    pub fn contains(&self, c: NodeCoord) -> bool {
        c.x < self.k[0] && c.y < self.k[1] && c.z < self.k[2]
    }

    /// The neighbor of node `c` one hop in direction `dir`, with wraparound.
    #[inline]
    pub fn neighbor(&self, c: NodeCoord, dir: TorusDir) -> NodeCoord {
        let k = self.k(dir.dim) as i32;
        let cur = c.get(dir.dim) as i32;
        let next = (cur + dir.sign.delta()).rem_euclid(k) as u8;
        c.with(dir.dim, next)
    }

    /// Whether a single hop from `c` in direction `dir` crosses the dateline.
    ///
    /// Datelines are placed between node `k_D − 1` and node `0` in every
    /// dimension (Section 2.5): the hop `k_D − 1 → 0` (direction `+`) and the
    /// hop `0 → k_D − 1` (direction `−`) cross the dateline.
    #[inline]
    pub fn hop_crosses_dateline(&self, c: NodeCoord, dir: TorusDir) -> bool {
        let k = self.k(dir.dim);
        if k <= 1 {
            return false;
        }
        let cur = c.get(dir.dim);
        match dir.sign {
            Sign::Plus => cur == k - 1,
            Sign::Minus => cur == 0,
        }
    }

    /// Signed minimal offsets from `src` to `dst` along each dimension.
    ///
    /// For each dimension the magnitude is the minimal hop count and the sign
    /// is the direction of travel. When the two directions are tied (distance
    /// exactly `k/2` with `k` even), the positive direction is returned;
    /// callers that randomize the tie-break should use
    /// [`TorusShape::minimal_offset_choices`].
    pub fn minimal_offsets(&self, src: NodeCoord, dst: NodeCoord) -> [i32; 3] {
        let mut out = [0i32; 3];
        for dim in Dim::ALL {
            let k = self.k(dim) as i32;
            let d = (dst.get(dim) as i32 - src.get(dim) as i32).rem_euclid(k);
            out[dim.index()] = if d * 2 <= k { d } else { d - k };
        }
        out
    }

    /// For one dimension: the minimal signed offset(s) from `src` to `dst`.
    ///
    /// Returns one choice normally, or two when both directions are minimal
    /// (distance exactly `k/2`, `k` even, `k > 2`). For `k == 2` the single
    /// positive hop is returned (the two "directions" are the same physical
    /// link).
    pub fn minimal_offset_choices(&self, dim: Dim, src: NodeCoord, dst: NodeCoord) -> Vec<i32> {
        let k = self.k(dim) as i32;
        let d = (dst.get(dim) as i32 - src.get(dim) as i32).rem_euclid(k);
        if d == 0 {
            vec![0]
        } else if d * 2 < k || k == 2 {
            vec![d]
        } else if d * 2 == k {
            vec![d, d - k]
        } else {
            vec![d - k]
        }
    }

    /// Minimal inter-node hop count between two nodes (sum over dimensions).
    pub fn min_hops(&self, src: NodeCoord, dst: NodeCoord) -> u32 {
        self.minimal_offsets(src, dst)
            .iter()
            .map(|d| d.unsigned_abs())
            .sum()
    }
}

impl fmt::Display for TorusShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.k[0], self.k[1], self.k[2])
    }
}

/// Coordinates of a node (ASIC) in the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeCoord {
    /// Coordinate along X.
    pub x: u8,
    /// Coordinate along Y.
    pub y: u8,
    /// Coordinate along Z.
    pub z: u8,
}

impl NodeCoord {
    /// Creates a node coordinate.
    #[inline]
    pub fn new(x: u8, y: u8, z: u8) -> NodeCoord {
        NodeCoord { x, y, z }
    }

    /// The coordinate along one dimension.
    #[inline]
    pub fn get(&self, dim: Dim) -> u8 {
        match dim {
            Dim::X => self.x,
            Dim::Y => self.y,
            Dim::Z => self.z,
        }
    }

    /// Copy of this coordinate with one dimension replaced.
    #[inline]
    pub fn with(&self, dim: Dim, val: u8) -> NodeCoord {
        let mut c = *self;
        match dim {
            Dim::X => c.x = val,
            Dim::Y => c.y = val,
            Dim::Z => c.z = val,
        }
        c
    }
}

impl fmt::Display for NodeCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// Linear id of a node, dense in `0..shape.num_nodes()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip() {
        let shape = TorusShape::new(4, 3, 2);
        for (i, c) in shape.nodes().enumerate() {
            assert_eq!(shape.id(c), NodeId(i as u32));
            assert_eq!(shape.coord(NodeId(i as u32)), c);
        }
        assert_eq!(shape.num_nodes(), 24);
    }

    #[test]
    fn neighbor_wraps() {
        let shape = TorusShape::cube(4);
        let c = NodeCoord::new(3, 0, 2);
        assert_eq!(
            shape.neighbor(c, TorusDir::new(Dim::X, Sign::Plus)),
            NodeCoord::new(0, 0, 2)
        );
        assert_eq!(
            shape.neighbor(c, TorusDir::new(Dim::Y, Sign::Minus)),
            NodeCoord::new(3, 3, 2)
        );
    }

    #[test]
    fn dateline_placement() {
        let shape = TorusShape::cube(4);
        // Dateline between nodes k-1 and 0.
        assert!(
            shape.hop_crosses_dateline(NodeCoord::new(3, 0, 0), TorusDir::new(Dim::X, Sign::Plus))
        );
        assert!(
            shape.hop_crosses_dateline(NodeCoord::new(0, 0, 0), TorusDir::new(Dim::X, Sign::Minus))
        );
        assert!(
            !shape.hop_crosses_dateline(NodeCoord::new(2, 0, 0), TorusDir::new(Dim::X, Sign::Plus))
        );
        assert!(!shape
            .hop_crosses_dateline(NodeCoord::new(3, 0, 0), TorusDir::new(Dim::X, Sign::Minus)));
    }

    #[test]
    fn minimal_offsets_prefer_short_way() {
        let shape = TorusShape::cube(8);
        let off = shape.minimal_offsets(NodeCoord::new(1, 0, 0), NodeCoord::new(7, 0, 0));
        assert_eq!(off, [-2, 0, 0]);
        let off = shape.minimal_offsets(NodeCoord::new(0, 2, 0), NodeCoord::new(0, 5, 0));
        assert_eq!(off, [0, 3, 0]);
    }

    #[test]
    fn minimal_offset_tie_has_two_choices() {
        let shape = TorusShape::cube(8);
        let choices =
            shape.minimal_offset_choices(Dim::X, NodeCoord::new(0, 0, 0), NodeCoord::new(4, 0, 0));
        assert_eq!(choices, vec![4, -4]);
        // k=2 collapses to a single physical link.
        let shape2 = TorusShape::cube(2);
        let choices =
            shape2.minimal_offset_choices(Dim::X, NodeCoord::new(0, 0, 0), NodeCoord::new(1, 0, 0));
        assert_eq!(choices, vec![1]);
    }

    #[test]
    fn min_hops_symmetric() {
        let shape = TorusShape::new(8, 4, 2);
        for a in shape.nodes() {
            for b in shape.nodes() {
                assert_eq!(shape.min_hops(a, b), shape.min_hops(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn torus_dir_index_roundtrip() {
        for (i, d) in TorusDir::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(TorusDir::from_index(i), *d);
            assert_eq!(d.opposite().opposite(), *d);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shape_rejects_zero() {
        TorusShape::new(0, 4, 4);
    }
}
