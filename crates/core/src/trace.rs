//! Link-level route tracing.
//!
//! Given a packet's routing decision, this module produces the exact
//! sequence of directed links (with the virtual channel requested on each)
//! the packet traverses through the whole machine — every on-chip mesh hop,
//! skip channel, adapter link, and torus channel. The trace is the reference
//! semantics of the network: the offline analyses (channel loads, arbiter
//! weights, VC dependency graphs) are computed from it, and the simulator's
//! incremental route computation is cross-checked against it in tests.

use std::fmt;

use crate::chip::{ChanId, LinkGroup, LocalEndpointId, LocalLink, MeshCoord};
use crate::config::{GlobalEndpoint, MachineConfig};
use crate::multicast::McGroup;
use crate::routing::RouteSpec;
use crate::topology::{Dim, NodeCoord, NodeId, Slice, TorusDir};
use crate::vc::{Vc, VcState};

/// A directed link anywhere in the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GlobalLink {
    /// An on-chip link of one node.
    Local {
        /// The node containing the link.
        node: NodeId,
        /// The link within the node.
        link: LocalLink,
    },
    /// A torus channel leaving `from` in direction `dir` on `slice`.
    Torus {
        /// Node the channel departs from.
        from: NodeId,
        /// Departing direction.
        dir: TorusDir,
        /// Torus slice.
        slice: Slice,
    },
    /// A point-to-point inter-node channel of a non-torus topology (e.g. one
    /// spoke of a full mesh).
    Direct {
        /// Node the channel departs from.
        from: NodeId,
        /// Node the channel arrives at.
        to: NodeId,
    },
}

impl GlobalLink {
    /// The deadlock-analysis group of the link (inter-node channels are
    /// T-group).
    #[inline]
    pub fn group(&self) -> LinkGroup {
        match self {
            GlobalLink::Local { link, .. } => link.group(),
            GlobalLink::Torus { .. } | GlobalLink::Direct { .. } => LinkGroup::T,
        }
    }
}

impl fmt::Display for GlobalLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalLink::Local { node, link } => write!(f, "{node}/{link}"),
            GlobalLink::Torus { from, dir, slice } => write!(f, "{from}/{dir}{slice}"),
            GlobalLink::Direct { from, to } => write!(f, "{from}->{to}"),
        }
    }
}

/// One step of a traced route: the link taken and the VC requested on it.
pub type TraceStep = (GlobalLink, Vc);

/// Traces the complete link-level route of a unicast packet.
///
/// # Panics
///
/// Panics if `spec` does not route from `src`'s node to `dst`'s node.
pub fn trace_unicast(
    cfg: &MachineConfig,
    src: GlobalEndpoint,
    dst: GlobalEndpoint,
    spec: &RouteSpec,
) -> Vec<TraceStep> {
    let hops = spec.hops();
    let mut end = cfg.shape.coord(src.node);
    for h in &hops {
        end = cfg.shape.neighbor(end, *h);
    }
    assert_eq!(
        end,
        cfg.shape.coord(dst.node),
        "route spec does not reach destination"
    );
    trace_hops(
        cfg,
        cfg.shape.coord(src.node),
        Some(src.ep),
        &hops,
        spec.slice,
        Some(dst.ep),
    )
}

/// Traces every root→leaf path of a multicast tree (one trace per delivered
/// endpoint copy). Shared prefix links appear in multiple traces.
pub fn trace_multicast(
    cfg: &MachineConfig,
    src: GlobalEndpoint,
    group: &McGroup,
) -> Vec<Vec<TraceStep>> {
    let src_node = cfg.shape.coord(src.node);
    let mut out = Vec::new();
    for tree in &group.trees {
        assert_eq!(tree.src, src_node, "multicast tree rooted elsewhere");
        let walk = tree.traverse(&cfg.shape);
        for (leaf, hops) in &walk.paths {
            let entry = tree.entry(cfg.shape.id(*leaf)).expect("leaf has an entry");
            for ep in &entry.local {
                out.push(trace_hops(
                    cfg,
                    src_node,
                    Some(src.ep),
                    hops,
                    tree.slice,
                    Some(*ep),
                ));
            }
        }
    }
    out
}

/// Replays an explicit torus-hop sequence through the machine, producing the
/// full link-level trace.
///
/// * `src_ep`: if `Some`, the trace starts with the endpoint's injection
///   link; otherwise it starts at the first node's arrival adapter (used for
///   mid-route segments).
/// * `final_ep`: if `Some`, the trace ends with ejection to that endpoint at
///   the last node.
///
/// The hop sequence must be a valid dimension-order route: hops of the same
/// dimension must be contiguous and share a direction, and each dimension
/// must appear at most once.
///
/// # Panics
///
/// Panics if the hop sequence violates dimension-order routing, since the
/// VC-promotion state machine is only defined for such routes.
pub fn trace_hops(
    cfg: &MachineConfig,
    start: NodeCoord,
    src_ep: Option<LocalEndpointId>,
    hops: &[TorusDir],
    slice: Slice,
    final_ep: Option<LocalEndpointId>,
) -> Vec<TraceStep> {
    trace_hops_with(
        cfg,
        start,
        src_ep,
        hops,
        slice,
        final_ep,
        &mut |node, dir| cfg.shape.hop_crosses_dateline(node, dir),
    )
}

/// [`trace_hops`] with the dateline-crossing rule supplied by the caller.
///
/// The static verifier uses this to trace routes under hypothetical crossing
/// rules (e.g. datelines disabled) without re-implementing the tracer; all
/// other semantics are identical to [`trace_hops`].
pub fn trace_hops_with(
    cfg: &MachineConfig,
    start: NodeCoord,
    src_ep: Option<LocalEndpointId>,
    hops: &[TorusDir],
    slice: Slice,
    final_ep: Option<LocalEndpointId>,
    crosses_dateline: &mut dyn FnMut(NodeCoord, TorusDir) -> bool,
) -> Vec<TraceStep> {
    trace_hops_impl(
        cfg,
        start,
        src_ep,
        hops,
        slice,
        final_ep,
        crosses_dateline,
        true,
    )
}

/// [`trace_hops_with`] for *run-ordered* hop sequences as produced by
/// degraded route tables: hops are grouped into maximal single-direction
/// runs, but a dimension may be revisited in a later run (a BFS detour
/// around a severed ring, e.g. `+Y +X +X -Y`). The VC-promotion state
/// machine handles this — each run is its own `begin_dim`/`end_dim` phase
/// and the `m_i = i` invariant holds per *run* — as long as the total run
/// count stays within the promotion budget
/// ([`crate::route_table::RouteTable::validate`] enforces it), so only the
/// dimension-revisit restriction is relaxed here.
pub fn trace_table_hops(
    cfg: &MachineConfig,
    start: NodeCoord,
    src_ep: Option<LocalEndpointId>,
    hops: &[TorusDir],
    slice: Slice,
    final_ep: Option<LocalEndpointId>,
    crosses_dateline: &mut dyn FnMut(NodeCoord, TorusDir) -> bool,
) -> Vec<TraceStep> {
    trace_hops_impl(
        cfg,
        start,
        src_ep,
        hops,
        slice,
        final_ep,
        crosses_dateline,
        false,
    )
}

#[allow(clippy::too_many_arguments)]
fn trace_hops_impl(
    cfg: &MachineConfig,
    start: NodeCoord,
    src_ep: Option<LocalEndpointId>,
    hops: &[TorusDir],
    slice: Slice,
    final_ep: Option<LocalEndpointId>,
    crosses_dateline: &mut dyn FnMut(NodeCoord, TorusDir) -> bool,
    strict_dim_order: bool,
) -> Vec<TraceStep> {
    let chip = &cfg.chip;
    let mut steps = Vec::new();
    let mut vc = cfg.vc_policy.start();
    let mut node = start;
    // The router the packet's head currently sits at.
    let mut cur_router = match src_ep {
        Some(ep) => {
            let r = chip.endpoint_router(ep);
            steps.push((
                GlobalLink::Local {
                    node: cfg.shape.id(node),
                    link: LocalLink::EpToRouter(ep),
                },
                vc.vc_for(LinkGroup::M),
            ));
            r
        }
        None => {
            // Mid-route segment: position at the first hop's departure router.
            let first = hops.first().expect("segment trace needs at least one hop");
            chip.chan_router(ChanId { dir: *first, slice })
        }
    };
    let mut idx = 0;
    while idx < hops.len() {
        let dir = hops[idx];
        // Count the contiguous run of hops in this dimension.
        let run = hops[idx..].iter().take_while(|h| h.dim == dir.dim).count();
        assert!(
            hops[idx..idx + run].iter().all(|h| *h == dir),
            "hops within a dimension must share a direction"
        );
        if strict_dim_order {
            assert!(
                hops[idx + run..].iter().all(|h| h.dim != dir.dim),
                "dimension {} revisited — not a dimension-order route",
                dir.dim
            );
        }
        vc.begin_dim();
        // M-phase: mesh hops from the current router to the departure adapter.
        let depart = ChanId { dir, slice };
        push_mesh_route(
            cfg,
            &mut steps,
            node,
            cur_router,
            chip.chan_router(depart),
            &vc,
        );
        cur_router = chip.chan_router(depart);
        for h in 0..run {
            if h > 0 {
                // Through-route within an intermediate node.
                if dir.dim == Dim::X {
                    // Arrival router is the skip partner of the departure router.
                    steps.push((
                        GlobalLink::Local {
                            node: cfg.shape.id(node),
                            link: LocalLink::Skip { from: cur_router },
                        },
                        vc.vc_for(LinkGroup::T),
                    ));
                    cur_router = chip
                        .skip_partner(cur_router)
                        .expect("X adapters sit on skip routers");
                }
                debug_assert_eq!(cur_router, chip.chan_router(depart));
            }
            steps.push((
                GlobalLink::Local {
                    node: cfg.shape.id(node),
                    link: LocalLink::RouterToChan(depart),
                },
                vc.vc_for(LinkGroup::T),
            ));
            let crosses = crosses_dateline(node, dir);
            let tvc = vc.torus_hop(crosses);
            steps.push((
                GlobalLink::Torus {
                    from: cfg.shape.id(node),
                    dir,
                    slice,
                },
                tvc,
            ));
            node = cfg.shape.neighbor(node, dir);
            let arrive = ChanId {
                dir: dir.opposite(),
                slice,
            };
            steps.push((
                GlobalLink::Local {
                    node: cfg.shape.id(node),
                    link: LocalLink::ChanToRouter(arrive),
                },
                tvc,
            ));
            cur_router = chip.chan_router(arrive);
        }
        vc.end_dim();
        idx += run;
    }
    if let Some(ep) = final_ep {
        push_mesh_route(
            cfg,
            &mut steps,
            node,
            cur_router,
            chip.endpoint_router(ep),
            &vc,
        );
        steps.push((
            GlobalLink::Local {
                node: cfg.shape.id(node),
                link: LocalLink::RouterToEp(ep),
            },
            vc.vc_for(LinkGroup::M),
        ));
    }
    steps
}

fn push_mesh_route(
    cfg: &MachineConfig,
    steps: &mut Vec<TraceStep>,
    node: NodeCoord,
    from: MeshCoord,
    to: MeshCoord,
    vc: &VcState,
) {
    let mut cur = from;
    while let Some(d) = cfg.dir_order.next_dir(cur, to) {
        steps.push((
            GlobalLink::Local {
                node: cfg.shape.id(node),
                link: LocalLink::Mesh { from: cur, dir: d },
            },
            vc.vc_for(LinkGroup::M),
        ));
        cur = cur.step(d).expect("mesh route stays on chip");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::DimOrder;
    use crate::topology::{Sign, TorusShape};
    use crate::vc::VcPolicy;

    fn cfg(k: u8) -> MachineConfig {
        MachineConfig::new(TorusShape::cube(k))
    }

    fn ep(cfg: &MachineConfig, node: NodeCoord, e: u8) -> GlobalEndpoint {
        GlobalEndpoint {
            node: cfg.shape.id(node),
            ep: LocalEndpointId(e),
        }
    }

    #[test]
    fn x_through_uses_skip_channel() {
        let cfg = cfg(4);
        let src = ep(&cfg, NodeCoord::new(0, 0, 0), 0);
        let dst = ep(&cfg, NodeCoord::new(2, 0, 0), 0);
        let spec = RouteSpec::deterministic(
            &cfg.shape,
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(2, 0, 0),
            DimOrder::XYZ,
            Slice(1),
        );
        let steps = trace_unicast(&cfg, src, dst, &spec);
        let skips = steps
            .iter()
            .filter(|(l, _)| {
                matches!(
                    l,
                    GlobalLink::Local {
                        link: LocalLink::Skip { .. },
                        ..
                    }
                )
            })
            .count();
        // One intermediate node on the X through-route -> one skip traversal.
        assert_eq!(skips, 1);
    }

    #[test]
    fn yz_through_crosses_single_router() {
        // A through Y packet must not use any mesh links at intermediate
        // nodes: arrival and departure adapters share a router.
        let cfg = cfg(4);
        let src = ep(&cfg, NodeCoord::new(0, 0, 0), 0);
        let dst = ep(&cfg, NodeCoord::new(0, 2, 0), 0);
        let spec = RouteSpec::deterministic(
            &cfg.shape,
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(0, 2, 0),
            DimOrder::XYZ,
            Slice(0),
        );
        let steps = trace_unicast(&cfg, src, dst, &spec);
        let mid = cfg.shape.id(NodeCoord::new(0, 1, 0));
        let mesh_at_mid = steps
            .iter()
            .filter(|(l, _)| {
                matches!(l, GlobalLink::Local { node, link: LocalLink::Mesh { .. } } if *node == mid)
            })
            .count();
        assert_eq!(mesh_at_mid, 0);
    }

    #[test]
    fn vcs_never_exceed_policy_budget() {
        let mut cfg = cfg(4);
        for policy in [VcPolicy::Anton, VcPolicy::Baseline2n] {
            cfg.vc_policy = policy;
            for src_n in cfg.shape.nodes() {
                for dst_n in cfg.shape.nodes() {
                    for order in DimOrder::ALL {
                        let spec =
                            RouteSpec::deterministic(&cfg.shape, src_n, dst_n, order, Slice(0));
                        let steps =
                            trace_unicast(&cfg, ep(&cfg, src_n, 0), ep(&cfg, dst_n, 5), &spec);
                        for (link, vc) in steps {
                            let budget = policy.num_vcs(link.group());
                            assert!(
                                vc.0 < budget,
                                "{policy}: vc {vc} on {link} exceeds budget {budget}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn trace_alternates_m_and_t_phases() {
        let cfg = cfg(4);
        let src = ep(&cfg, NodeCoord::new(0, 0, 0), 2);
        let dst = ep(&cfg, NodeCoord::new(1, 1, 1), 7);
        let spec = RouteSpec::deterministic(
            &cfg.shape,
            NodeCoord::new(0, 0, 0),
            NodeCoord::new(1, 1, 1),
            DimOrder::XYZ,
            Slice(0),
        );
        let steps = trace_unicast(&cfg, src, dst, &spec);
        // Phases: M (inject + mesh), then T/M alternation, ending in M.
        let groups: Vec<LinkGroup> = steps.iter().map(|(l, _)| l.group()).collect();
        assert_eq!(*groups.first().unwrap(), LinkGroup::M);
        assert_eq!(*groups.last().unwrap(), LinkGroup::M);
        let mut phases = 1;
        for w in groups.windows(2) {
            if w[0] != w[1] {
                phases += 1;
            }
        }
        // 3 dimensions -> at most M,T,M,T,M,T,M = 7 phases.
        assert!(phases <= 7, "got {phases} phases");
    }

    #[test]
    fn intra_node_route_stays_on_vc0_mesh() {
        let cfg = cfg(4);
        let n = NodeCoord::new(2, 2, 2);
        let steps = trace_unicast(
            &cfg,
            ep(&cfg, n, 0),
            ep(&cfg, n, 15),
            &RouteSpec::deterministic(&cfg.shape, n, n, DimOrder::XYZ, Slice(0)),
        );
        for (link, vc) in steps {
            assert_eq!(link.group(), LinkGroup::M);
            assert_eq!(vc, Vc(0));
        }
    }

    #[test]
    fn dateline_hop_bumps_torus_vc() {
        let cfg = cfg(4);
        let src_n = NodeCoord::new(3, 0, 0);
        let dst_n = NodeCoord::new(1, 0, 0); // +X route crossing 3 -> 0
        let spec = RouteSpec::deterministic(&cfg.shape, src_n, dst_n, DimOrder::XYZ, Slice(0));
        assert_eq!(spec.offsets[0], 2);
        let steps = trace_unicast(&cfg, ep(&cfg, src_n, 0), ep(&cfg, dst_n, 0), &spec);
        let torus_vcs: Vec<Vc> = steps
            .iter()
            .filter(|(l, _)| matches!(l, GlobalLink::Torus { .. }))
            .map(|(_, vc)| *vc)
            .collect();
        // First hop crosses the dateline (3 -> 0): vc 1; second hop keeps it.
        assert_eq!(torus_vcs, vec![Vc(1), Vc(1)]);
        // Final ejection is on M vc 1 (crossed, so no further promotion).
        let (last, vc) = steps.last().unwrap();
        assert!(matches!(
            last,
            GlobalLink::Local {
                link: LocalLink::RouterToEp(_),
                ..
            }
        ));
        assert_eq!(*vc, Vc(1));
    }

    #[test]
    #[should_panic(expected = "revisited")]
    fn non_dimension_order_hops_rejected() {
        let cfg = cfg(4);
        let x = TorusDir::new(Dim::X, Sign::Plus);
        let y = TorusDir::new(Dim::Y, Sign::Plus);
        trace_hops(
            &cfg,
            NodeCoord::new(0, 0, 0),
            Some(LocalEndpointId(0)),
            &[x, y, x],
            Slice(0),
            None,
        );
    }
}
