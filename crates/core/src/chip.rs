//! On-chip layout: the 4×4 mesh, skip channels, and adapter placement.
//!
//! Each Anton 2 ASIC contains a 4×4 mesh of routers (dimensions U and V)
//! that connects the node's compute endpoints and acts as the switch for the
//! twelve external torus channels (Figure 1 of the paper). This module fixes
//! the placement of every component and enumerates the directed on-chip
//! links, tagging each link with its deadlock-analysis group (M or T,
//! Section 2.5).
//!
//! Placement (matching the paper's Figure 1, its routing examples, and the
//! Section 2.4 optimization result):
//!
//! * High-speed I/O is split across the two `U` edges of the chip. All `+X`
//!   channel adapters sit on the `U = 0` edge and all `−X` adapters on the
//!   `U = 3` edge; slice 1 uses row `V = 0` and slice 0 uses row `V = 1`, so
//!   a slice-1 packet passing through in `+X` follows
//!   `X₁⁻ → R(3,0) → skip → R(0,0) → X₁⁺` exactly as in Section 2.4.
//! * Y and Z adapters of a slice share one edge: slice 0 on `U = 0`
//!   (`Y₀±` at `R(0,2)`, `Z₀±` at `R(0,3)`), slice 1 on `U = 3`
//!   (`Y₁±` at `R(3,3)`, `Z₁±` at `R(3,2)`). Both directions of a Y or Z
//!   channel attach to the *same* router so through-traffic crosses a single
//!   router.
//! * Skip channels connect `R(0,0) ↔ R(3,0)` and `R(0,1) ↔ R(3,1)`.
//!
//! The exact rows are calibrated so the Section 2.4 search reproduces the
//! paper's result: with this floorplan, routing (V⁻, U⁺, U⁻, V⁺) achieves
//! the optimal worst-case mesh load of two torus channels (Figure 4), which
//! pins the X-channel rows to 0 and 1 given the example-pinned positions of
//! `X₁` and `Y₀`.

use std::fmt;

use crate::topology::{Dim, Sign, Slice, TorusDir};

/// Mesh extent along U.
pub const MESH_U: u8 = 4;
/// Mesh extent along V.
pub const MESH_V: u8 = 4;
/// Routers per node.
pub const NUM_ROUTERS: usize = (MESH_U as usize) * (MESH_V as usize);
/// Channel adapters per node (6 torus directions × 2 slices).
pub const NUM_CHAN_ADAPTERS: usize = 12;
/// Maximum ports per router (each port carries one bidirectional channel).
pub const MAX_ROUTER_PORTS: usize = 6;

/// Coordinates of a router in the on-chip mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MeshCoord {
    /// Coordinate along U (0..4).
    pub u: u8,
    /// Coordinate along V (0..4).
    pub v: u8,
}

impl MeshCoord {
    /// Creates a mesh coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the 4×4 mesh.
    #[inline]
    pub fn new(u: u8, v: u8) -> MeshCoord {
        assert!(
            u < MESH_U && v < MESH_V,
            "mesh coordinate ({u},{v}) out of range"
        );
        MeshCoord { u, v }
    }

    /// Dense index 0..16 (`u`-major).
    #[inline]
    pub fn index(self) -> usize {
        self.u as usize + (MESH_U as usize) * self.v as usize
    }

    /// Router at the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 16`.
    #[inline]
    pub fn from_index(idx: usize) -> MeshCoord {
        assert!(idx < NUM_ROUTERS, "router index {idx} out of range");
        MeshCoord {
            u: (idx % MESH_U as usize) as u8,
            v: (idx / MESH_U as usize) as u8,
        }
    }

    /// All router coordinates in index order.
    pub fn all() -> impl Iterator<Item = MeshCoord> {
        (0..NUM_ROUTERS).map(MeshCoord::from_index)
    }

    /// The neighbor one mesh hop away, or `None` at the mesh edge.
    #[inline]
    pub fn step(self, dir: MeshDir) -> Option<MeshCoord> {
        let (du, dv) = dir.delta();
        let u = self.u as i8 + du;
        let v = self.v as i8 + dv;
        if (0..MESH_U as i8).contains(&u) && (0..MESH_V as i8).contains(&v) {
            Some(MeshCoord {
                u: u as u8,
                v: v as u8,
            })
        } else {
            None
        }
    }
}

impl fmt::Display for MeshCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R({},{})", self.u, self.v)
    }
}

/// A directed on-chip mesh direction: U±, V±.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MeshDir {
    /// Increasing U.
    UPlus,
    /// Decreasing U.
    UMinus,
    /// Increasing V.
    VPlus,
    /// Decreasing V.
    VMinus,
}

impl MeshDir {
    /// All four mesh directions.
    pub const ALL: [MeshDir; 4] = [
        MeshDir::UPlus,
        MeshDir::UMinus,
        MeshDir::VPlus,
        MeshDir::VMinus,
    ];

    /// Coordinate delta `(du, dv)` of one hop in this direction.
    #[inline]
    pub fn delta(self) -> (i8, i8) {
        match self {
            MeshDir::UPlus => (1, 0),
            MeshDir::UMinus => (-1, 0),
            MeshDir::VPlus => (0, 1),
            MeshDir::VMinus => (0, -1),
        }
    }

    /// The opposite mesh direction.
    #[inline]
    pub fn opposite(self) -> MeshDir {
        match self {
            MeshDir::UPlus => MeshDir::UMinus,
            MeshDir::UMinus => MeshDir::UPlus,
            MeshDir::VPlus => MeshDir::VMinus,
            MeshDir::VMinus => MeshDir::VPlus,
        }
    }

    /// Dense index 0..4 in [`MeshDir::ALL`] order.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MeshDir::UPlus => 0,
            MeshDir::UMinus => 1,
            MeshDir::VPlus => 2,
            MeshDir::VMinus => 3,
        }
    }
}

impl fmt::Display for MeshDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshDir::UPlus => write!(f, "U+"),
            MeshDir::UMinus => write!(f, "U-"),
            MeshDir::VPlus => write!(f, "V+"),
            MeshDir::VMinus => write!(f, "V-"),
        }
    }
}

/// Identifier of one of the twelve channel adapters on a node.
///
/// A channel adapter terminates one bidirectional external torus channel,
/// identified by the direction of *departing* packets and the torus slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChanId {
    /// Departing direction of the channel.
    pub dir: TorusDir,
    /// Torus slice of the channel.
    pub slice: Slice,
}

impl ChanId {
    /// Dense index 0..12 (direction-major).
    #[inline]
    pub fn index(self) -> usize {
        self.dir.index() * 2 + self.slice.0 as usize
    }

    /// Channel adapter with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 12`.
    #[inline]
    pub fn from_index(idx: usize) -> ChanId {
        assert!(
            idx < NUM_CHAN_ADAPTERS,
            "channel adapter index {idx} out of range"
        );
        ChanId {
            dir: TorusDir::from_index(idx / 2),
            slice: Slice((idx % 2) as u8),
        }
    }

    /// All twelve channel adapters in index order.
    pub fn all() -> impl Iterator<Item = ChanId> {
        (0..NUM_CHAN_ADAPTERS).map(ChanId::from_index)
    }
}

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.dir.dim, self.slice.0, self.dir.sign)
    }
}

/// Identifier of an endpoint adapter within a node (dense, `0..num_endpoints`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LocalEndpointId(pub u8);

impl fmt::Display for LocalEndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// What a router port attaches to within the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalAttach {
    /// A neighboring mesh router in the given direction.
    Mesh(MeshDir),
    /// The skip-channel partner router on the opposite edge.
    Skip,
    /// A channel adapter (and through it, an external torus channel).
    Chan(ChanId),
    /// An endpoint adapter (and through it, a compute endpoint).
    Endpoint(LocalEndpointId),
}

/// Attach codes below this value are fixed-function (mesh, skip, channel
/// adapters); endpoint attaches follow, so codes are bounded by
/// `ATTACH_CODE_BASE + num_endpoints`.
pub const ATTACH_CODE_BASE: usize = MeshDir::ALL.len() + 1 + NUM_CHAN_ADAPTERS;

impl LocalAttach {
    /// Dense code of this attach point, for index-keyed port lookup tables:
    /// mesh directions first, then skip, channel adapters, and endpoints.
    #[inline]
    pub fn code(self) -> usize {
        match self {
            LocalAttach::Mesh(d) => d.index(),
            LocalAttach::Skip => MeshDir::ALL.len(),
            LocalAttach::Chan(c) => MeshDir::ALL.len() + 1 + c.index(),
            LocalAttach::Endpoint(e) => ATTACH_CODE_BASE + e.0 as usize,
        }
    }
}

/// A directed on-chip link.
///
/// Bidirectional channels are represented as two directed links. Torus
/// channels themselves (between nodes) are *not* on-chip links; see the
/// machine-level link enumeration in downstream crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LocalLink {
    /// Mesh channel leaving router `from` in direction `dir`.
    Mesh {
        /// Source router.
        from: MeshCoord,
        /// Direction of the hop.
        dir: MeshDir,
    },
    /// Skip channel leaving router `from` toward its skip partner.
    Skip {
        /// Source router.
        from: MeshCoord,
    },
    /// Channel-adapter → router link (packets arriving from the torus).
    ChanToRouter(ChanId),
    /// Router → channel-adapter link (packets departing onto the torus).
    RouterToChan(ChanId),
    /// Endpoint-adapter → router link (injection).
    EpToRouter(LocalEndpointId),
    /// Router → endpoint-adapter link (ejection).
    RouterToEp(LocalEndpointId),
}

/// Deadlock-analysis group of a channel (Section 2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkGroup {
    /// Mesh channels (except skip channels) and endpoint-adapter links.
    M,
    /// Skip channels, router↔channel-adapter links, and torus channels.
    T,
}

impl LocalLink {
    /// The deadlock-analysis group of this link.
    #[inline]
    pub fn group(&self) -> LinkGroup {
        match self {
            LocalLink::Mesh { .. } | LocalLink::EpToRouter(_) | LocalLink::RouterToEp(_) => {
                LinkGroup::M
            }
            LocalLink::Skip { .. } | LocalLink::ChanToRouter(_) | LocalLink::RouterToChan(_) => {
                LinkGroup::T
            }
        }
    }
}

impl fmt::Display for LocalLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocalLink::Mesh { from, dir } => write!(f, "{from}->{dir}"),
            LocalLink::Skip { from } => write!(f, "{from}->skip"),
            LocalLink::ChanToRouter(c) => write!(f, "{c}->R"),
            LocalLink::RouterToChan(c) => write!(f, "R->{c}"),
            LocalLink::EpToRouter(e) => write!(f, "{e}->R"),
            LocalLink::RouterToEp(e) => write!(f, "R->{e}"),
        }
    }
}

/// The fixed physical layout of one Anton 2 ASIC's network.
///
/// The layout is parameterized only by the number of endpoint adapters; all
/// other placement is fixed by the chip floorplan described in the paper.
///
/// # Examples
///
/// ```
/// use anton_core::chip::{ChipLayout, ChanId, MeshCoord};
/// use anton_core::topology::{Dim, Sign, Slice, TorusDir};
///
/// let chip = ChipLayout::new(16);
/// // Slice-1 +X traffic departs from R(0,0), as in the paper's example.
/// let x1p = ChanId { dir: TorusDir::new(Dim::X, Sign::Plus), slice: Slice(1) };
/// assert_eq!(chip.chan_router(x1p), MeshCoord::new(0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipLayout {
    num_endpoints: u8,
    /// Router hosting each endpoint, indexed by `LocalEndpointId`.
    endpoint_router: Vec<MeshCoord>,
}

impl ChipLayout {
    /// Creates a layout with `num_endpoints` endpoint adapters.
    ///
    /// The first 16 endpoints are placed one per router (in router-index
    /// order); additional endpoints are placed on routers that still have a
    /// spare port. The Anton 2 ASIC has 23 endpoint adapters (Table 1); the
    /// experiments in Section 4 use one core per router, i.e. 16.
    ///
    /// # Panics
    ///
    /// Panics if `num_endpoints` is zero or exceeds the port budget
    /// (32 with the fixed adapter placement).
    pub fn new(num_endpoints: u8) -> ChipLayout {
        assert!(num_endpoints > 0, "a node needs at least one endpoint");
        let mut used_ports = [0usize; NUM_ROUTERS];
        for r in MeshCoord::all() {
            let mut n = MeshDir::ALL
                .iter()
                .filter(|d| r.step(**d).is_some())
                .count();
            if Self::skip_partner_static(r).is_some() {
                n += 1;
            }
            n += ChanId::all()
                .filter(|c| Self::chan_router_static(*c) == r)
                .count();
            used_ports[r.index()] = n;
        }
        let mut endpoint_router = Vec::with_capacity(num_endpoints as usize);
        // One endpoint per router first, then fill spare ports.
        for round in 0..MAX_ROUTER_PORTS {
            for r in MeshCoord::all() {
                if endpoint_router.len() == num_endpoints as usize {
                    break;
                }
                let hosted = endpoint_router.iter().filter(|&&h| h == r).count();
                if hosted == round && used_ports[r.index()] + hosted < MAX_ROUTER_PORTS {
                    endpoint_router.push(r);
                }
            }
        }
        assert!(
            endpoint_router.len() == num_endpoints as usize,
            "port budget exceeded: only {} endpoint ports available, {num_endpoints} requested",
            endpoint_router.len()
        );
        ChipLayout {
            num_endpoints,
            endpoint_router,
        }
    }

    /// Number of endpoint adapters on this node.
    #[inline]
    pub fn num_endpoints(&self) -> u8 {
        self.num_endpoints
    }

    /// All endpoint ids on this node.
    pub fn endpoints(&self) -> impl Iterator<Item = LocalEndpointId> {
        (0..self.num_endpoints).map(LocalEndpointId)
    }

    /// The router hosting an endpoint adapter.
    ///
    /// # Panics
    ///
    /// Panics if the endpoint id is out of range.
    #[inline]
    pub fn endpoint_router(&self, ep: LocalEndpointId) -> MeshCoord {
        self.endpoint_router[ep.0 as usize]
    }

    /// The router a channel adapter attaches to (fixed floorplan).
    #[inline]
    pub fn chan_router(&self, chan: ChanId) -> MeshCoord {
        Self::chan_router_static(chan)
    }

    fn chan_router_static(chan: ChanId) -> MeshCoord {
        let s = chan.slice.0;
        match (chan.dir.dim, chan.dir.sign) {
            // X+ on the U=0 edge, X− on the U=3 edge; slice 1 in row V=0,
            // slice 0 in row V=1.
            (Dim::X, Sign::Plus) => MeshCoord::new(0, if s == 1 { 0 } else { 1 }),
            (Dim::X, Sign::Minus) => MeshCoord::new(3, if s == 1 { 0 } else { 1 }),
            // Y/Z of slice 0 on the U=0 edge, slice 1 on the U=3 edge; both
            // directions of a channel attach to the same router.
            (Dim::Y, _) => {
                if s == 0 {
                    MeshCoord::new(0, 2)
                } else {
                    MeshCoord::new(3, 3)
                }
            }
            (Dim::Z, _) => {
                if s == 0 {
                    MeshCoord::new(0, 3)
                } else {
                    MeshCoord::new(3, 2)
                }
            }
        }
    }

    /// The skip-channel partner of a router, if it has one.
    ///
    /// Skip channels connect `R(0,0) ↔ R(3,0)` and `R(0,3) ↔ R(3,3)`,
    /// letting X through-traffic bypass two intermediate routers.
    #[inline]
    pub fn skip_partner(&self, r: MeshCoord) -> Option<MeshCoord> {
        Self::skip_partner_static(r)
    }

    fn skip_partner_static(r: MeshCoord) -> Option<MeshCoord> {
        match (r.u, r.v) {
            (0, 0) => Some(MeshCoord::new(3, 0)),
            (3, 0) => Some(MeshCoord::new(0, 0)),
            (0, 1) => Some(MeshCoord::new(3, 1)),
            (3, 1) => Some(MeshCoord::new(0, 1)),
            _ => None,
        }
    }

    /// The port list of a router: everything it attaches to.
    ///
    /// Every router has at most [`MAX_ROUTER_PORTS`] ports.
    pub fn router_ports(&self, r: MeshCoord) -> Vec<LocalAttach> {
        let mut ports = Vec::with_capacity(MAX_ROUTER_PORTS);
        for d in MeshDir::ALL {
            if r.step(d).is_some() {
                ports.push(LocalAttach::Mesh(d));
            }
        }
        if self.skip_partner(r).is_some() {
            ports.push(LocalAttach::Skip);
        }
        for c in ChanId::all() {
            if self.chan_router(c) == r {
                ports.push(LocalAttach::Chan(c));
            }
        }
        for (i, host) in self.endpoint_router.iter().enumerate() {
            if *host == r {
                ports.push(LocalAttach::Endpoint(LocalEndpointId(i as u8)));
            }
        }
        ports
    }

    /// Enumerates every directed on-chip link.
    pub fn local_links(&self) -> Vec<LocalLink> {
        let mut links = Vec::new();
        for r in MeshCoord::all() {
            for d in MeshDir::ALL {
                if r.step(d).is_some() {
                    links.push(LocalLink::Mesh { from: r, dir: d });
                }
            }
            if self.skip_partner(r).is_some() {
                links.push(LocalLink::Skip { from: r });
            }
        }
        for c in ChanId::all() {
            links.push(LocalLink::ChanToRouter(c));
            links.push(LocalLink::RouterToChan(c));
        }
        for e in self.endpoints() {
            links.push(LocalLink::EpToRouter(e));
            links.push(LocalLink::RouterToEp(e));
        }
        links
    }

    /// Source and destination routers of a directed local link.
    ///
    /// Adapter links return the hosting router on both legs' router side:
    /// for `ChanToRouter`/`EpToRouter` the destination is the router; for
    /// `RouterToChan`/`RouterToEp` the source is the router.
    pub fn link_routers(&self, link: LocalLink) -> (MeshCoord, MeshCoord) {
        match link {
            LocalLink::Mesh { from, dir } => {
                (from, from.step(dir).expect("mesh link must stay in mesh"))
            }
            LocalLink::Skip { from } => (
                from,
                self.skip_partner(from).expect("skip link requires partner"),
            ),
            LocalLink::ChanToRouter(c) => (self.chan_router(c), self.chan_router(c)),
            LocalLink::RouterToChan(c) => (self.chan_router(c), self.chan_router(c)),
            LocalLink::EpToRouter(e) => (self.endpoint_router(e), self.endpoint_router(e)),
            LocalLink::RouterToEp(e) => (self.endpoint_router(e), self.endpoint_router(e)),
        }
    }
}

impl Default for ChipLayout {
    /// A layout with one endpoint per router (16), the configuration used by
    /// the paper's measurements ("one core per router").
    fn default() -> ChipLayout {
        ChipLayout::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_budget_respected() {
        for n in [1u8, 16, 23, 28] {
            let chip = ChipLayout::new(n);
            for r in MeshCoord::all() {
                let ports = chip.router_ports(r);
                assert!(
                    ports.len() <= MAX_ROUTER_PORTS,
                    "{r} has {} ports with {n} endpoints",
                    ports.len()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "port budget exceeded")]
    fn too_many_endpoints_rejected() {
        ChipLayout::new(33);
    }

    #[test]
    fn paper_x_through_example() {
        // Section 2.4: a packet traveling +X on slice 1 follows
        // X1- -> R(3,0) -> skip -> R(0,0) -> X1+.
        let chip = ChipLayout::default();
        let arrive = ChanId {
            dir: TorusDir::new(Dim::X, Sign::Minus),
            slice: Slice(1),
        };
        let depart = ChanId {
            dir: TorusDir::new(Dim::X, Sign::Plus),
            slice: Slice(1),
        };
        assert_eq!(chip.chan_router(arrive), MeshCoord::new(3, 0));
        assert_eq!(chip.chan_router(depart), MeshCoord::new(0, 0));
        assert_eq!(
            chip.skip_partner(chip.chan_router(arrive)),
            Some(chip.chan_router(depart))
        );
    }

    #[test]
    fn paper_y_through_example() {
        // Section 2.4: a packet traveling -Y on slice 0 follows
        // Y0+ -> R(0,2) -> Y0-.
        let chip = ChipLayout::default();
        let arrive = ChanId {
            dir: TorusDir::new(Dim::Y, Sign::Plus),
            slice: Slice(0),
        };
        let depart = ChanId {
            dir: TorusDir::new(Dim::Y, Sign::Minus),
            slice: Slice(0),
        };
        assert_eq!(chip.chan_router(arrive), MeshCoord::new(0, 2));
        assert_eq!(chip.chan_router(depart), MeshCoord::new(0, 2));
    }

    #[test]
    fn yz_same_slice_same_edge() {
        let chip = ChipLayout::default();
        for slice in Slice::ALL {
            let edge = chip
                .chan_router(ChanId {
                    dir: TorusDir::new(Dim::Y, Sign::Plus),
                    slice,
                })
                .u;
            for dim in [Dim::Y, Dim::Z] {
                for sign in [Sign::Plus, Sign::Minus] {
                    let r = chip.chan_router(ChanId {
                        dir: TorusDir::new(dim, sign),
                        slice,
                    });
                    assert_eq!(r.u, edge, "{dim}{sign} {slice} not on edge U={edge}");
                }
            }
        }
    }

    #[test]
    fn skip_channels_symmetric() {
        let chip = ChipLayout::default();
        let mut count = 0;
        for r in MeshCoord::all() {
            if let Some(p) = chip.skip_partner(r) {
                count += 1;
                assert_eq!(chip.skip_partner(p), Some(r));
                // A skip channel bypasses exactly two intermediate routers.
                assert_eq!((r.u as i8 - p.u as i8).abs(), 3);
                assert_eq!(r.v, p.v);
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn link_groups_match_section_2_5() {
        let chip = ChipLayout::default();
        let links = chip.local_links();
        // 48 directed mesh links + 4 skip + 24 chan-adapter + 32 endpoint.
        assert_eq!(links.len(), 48 + 4 + 24 + 32);
        for link in links {
            match link {
                LocalLink::Mesh { .. } => assert_eq!(link.group(), LinkGroup::M),
                LocalLink::Skip { .. }
                | LocalLink::ChanToRouter(_)
                | LocalLink::RouterToChan(_) => assert_eq!(link.group(), LinkGroup::T),
                LocalLink::EpToRouter(_) | LocalLink::RouterToEp(_) => {
                    assert_eq!(link.group(), LinkGroup::M)
                }
            }
        }
    }

    #[test]
    fn endpoints_fill_one_per_router_first() {
        let chip = ChipLayout::new(16);
        let hosts: std::collections::HashSet<_> =
            chip.endpoints().map(|e| chip.endpoint_router(e)).collect();
        assert_eq!(hosts.len(), 16);
    }

    #[test]
    fn mesh_step_edges() {
        assert_eq!(MeshCoord::new(0, 0).step(MeshDir::UMinus), None);
        assert_eq!(MeshCoord::new(3, 3).step(MeshDir::VPlus), None);
        assert_eq!(
            MeshCoord::new(1, 2).step(MeshDir::UPlus),
            Some(MeshCoord::new(2, 2))
        );
    }
}
