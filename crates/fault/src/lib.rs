//! Fault injection for the Anton 2 network model.
//!
//! The paper's torus channels are only dependable because the link layer
//! makes them so: CRC framing plus go-back-N retransmission turn a lossy
//! 14 Gb/s SerDes lane group into an 89.6 Gb/s reliable channel
//! (Section 2.2). This crate lets the cycle simulator *experience* that
//! machinery instead of assuming it away:
//!
//! - [`FaultSchedule`] describes, deterministically and reproducibly, which
//!   links misbehave and how — a seeded baseline bit-error rate, per-link
//!   degradations, and transient or permanent link-down windows.
//! - [`LinkShim`] is a per-link lossy-channel model that runs the real
//!   [`anton_link`] go-back-N sender/receiver state machines under that
//!   schedule. The simulator's torus `Wire` routes its flits through the
//!   shim, so corrupted frames stall and rewind real in-flight traffic.
//!
//! The shim is packet-agnostic: the wire hands it flit counts, the shim
//! answers with "this many packets completed this cycle", and the wire keeps
//! the actual packet queue. Flit payloads carry a serial number so the shim
//! self-checks that the link layer delivered every flit exactly once and in
//! order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod schedule;
pub mod shim;

pub use schedule::{FaultKind, FaultSchedule, LinkFault, LinkProfile, SHIM_TIMEOUT, SHIM_WINDOW};
pub use shim::{LinkShim, ShimEvent, ShimStats};
