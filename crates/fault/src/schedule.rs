//! Deterministic fault schedules.
//!
//! A [`FaultSchedule`] is a complete, self-contained description of link
//! misbehavior for one simulation: a seed, a baseline bit-error rate applied
//! to every external torus link, and a list of per-link exceptions
//! (degraded BER or down windows). Serializing these few values into a
//! results file is enough to reproduce a faulty run exactly.

use anton_core::chip::ChanId;
use anton_core::topology::NodeId;
use anton_link::gobackn::GoBackNConfig;

/// Go-back-N window used by link shims unless overridden: large enough that
/// a fault-free torus link (round trip ≈ 2 × 44 cycles at ≈ 0.31
/// frames/cycle ≈ 28 frames in flight) never stalls on the window.
pub const SHIM_WINDOW: u8 = 64;

/// Retransmission timeout (cycles) used by link shims unless overridden:
/// comfortably above the torus round trip (≈ 88 cycles) plus ack service
/// jitter, so fault-free traffic never rewinds spuriously.
pub const SHIM_TIMEOUT: u64 = 192;

/// What is wrong with one particular link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The link runs at the given bit-error rate instead of the schedule's
    /// default (use a higher value for a permanently degraded link).
    Degraded {
        /// Per-bit error probability for this link.
        ber: f64,
    },
    /// Every frame (data and ack) on the link is lost while
    /// `from_cycle <= now < until_cycle`. Use `until_cycle = u64::MAX` for a
    /// permanently dead link.
    Down {
        /// First cycle of the outage (inclusive).
        from_cycle: u64,
        /// End of the outage (exclusive).
        until_cycle: u64,
    },
}

/// A fault pinned to one directed external torus link, identified by its
/// source node and departing channel adapter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Node the faulty link departs from.
    pub from: NodeId,
    /// Channel adapter (direction × slice) the faulty link departs through.
    pub chan: ChanId,
    /// What happens on that link.
    pub kind: FaultKind,
}

/// Effective fault profile of a single link after applying the schedule's
/// default and all matching per-link entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkProfile {
    /// Bit-error rate in effect on this link.
    pub ber: f64,
    /// Outage windows `[from, until)` during which all frames are lost.
    pub downs: Vec<(u64, u64)>,
}

/// A deterministic, reproducible description of link faults for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Master seed; each link derives an independent RNG stream from it, so
    /// corruption decisions do not depend on link iteration order.
    pub seed: u64,
    /// Bit-error rate applied to every torus link not overridden by a
    /// [`FaultKind::Degraded`] entry.
    pub default_ber: f64,
    /// Go-back-N parameters for every link shim.
    pub gbn: GoBackNConfig,
    /// Per-link exceptions, applied in order (later entries win for BER).
    pub faults: Vec<LinkFault>,
}

impl FaultSchedule {
    /// A schedule applying `ber` uniformly to every torus link, with the
    /// default shim go-back-N parameters.
    pub fn uniform(seed: u64, ber: f64) -> FaultSchedule {
        FaultSchedule {
            seed,
            default_ber: ber,
            gbn: GoBackNConfig {
                window: SHIM_WINDOW,
                timeout: SHIM_TIMEOUT,
            },
            faults: Vec::new(),
        }
    }

    /// Adds a per-link fault, builder-style.
    pub fn with_fault(mut self, from: NodeId, chan: ChanId, kind: FaultKind) -> FaultSchedule {
        self.faults.push(LinkFault { from, chan, kind });
        self
    }

    /// Resolves the effective profile of the link departing `from` through
    /// `chan`.
    pub fn profile(&self, from: NodeId, chan: ChanId) -> LinkProfile {
        let mut profile = LinkProfile {
            ber: self.default_ber,
            downs: Vec::new(),
        };
        for f in &self.faults {
            if f.from != from || f.chan != chan {
                continue;
            }
            match f.kind {
                FaultKind::Degraded { ber } => profile.ber = ber,
                FaultKind::Down {
                    from_cycle,
                    until_cycle,
                } => profile.downs.push((from_cycle, until_cycle)),
            }
        }
        profile
    }

    /// Independent RNG seed for the link with the given dense index (see
    /// `MachineConfig::torus_link_index`). Splitmix64 over `(seed, index)`
    /// keeps streams uncorrelated and independent of install order.
    pub fn link_seed(&self, link_index: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(link_index as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(idx: usize) -> ChanId {
        ChanId::from_index(idx)
    }

    #[test]
    fn per_link_faults_override_default() {
        let sched = FaultSchedule::uniform(1, 1e-6)
            .with_fault(NodeId(3), chan(2), FaultKind::Degraded { ber: 1e-3 })
            .with_fault(
                NodeId(3),
                chan(2),
                FaultKind::Down {
                    from_cycle: 10,
                    until_cycle: 20,
                },
            );
        let hit = sched.profile(NodeId(3), chan(2));
        assert_eq!(hit.ber, 1e-3);
        assert_eq!(hit.downs, vec![(10, 20)]);
        let miss = sched.profile(NodeId(3), chan(3));
        assert_eq!(miss.ber, 1e-6);
        assert!(miss.downs.is_empty());
    }

    #[test]
    fn link_seeds_are_distinct_and_stable() {
        let sched = FaultSchedule::uniform(42, 0.0);
        let a = sched.link_seed(0);
        let b = sched.link_seed(1);
        assert_ne!(a, b);
        assert_eq!(a, FaultSchedule::uniform(42, 1e-3).link_seed(0));
    }
}
