//! Lossy-link shim: go-back-N under fire, embedded in a simulated channel.
//!
//! A [`LinkShim`] sits between a torus `Wire`'s send side and its receive
//! buffers. The wire enqueues each packet's flits; the shim pushes them
//! through the real [`anton_link`] go-back-N sender, frames them, corrupts
//! or drops them according to the link's fault profile, runs the receiver,
//! and reports how many *packets* finished crossing the link each cycle.
//! The wire keeps the actual packet queue (delivery is strictly FIFO, which
//! go-back-N guarantees), so the shim itself stays packet-agnostic.
//!
//! Rate model: a token bucket with the same gain/cost ratio as the
//! serializer's (14/45 ≈ 0.311 frames per cycle — exactly the 112 Gb/s raw
//! lane rate at 240 bits per frame and 1.5 GHz), but with a deeper bucket
//! (two frames' worth). Because the upstream serializer already meters
//! goodput at 14/45 flits per cycle with a shallower bucket, the shim adds
//! *zero* delay on a fault-free link — every flit completes on the exact
//! cycle the ideal wire would deliver it — while retransmissions correctly
//! consume link bandwidth when frames are lost.

use std::collections::VecDeque;

use anton_link::frame::{Frame, FRAME_BYTES};
use anton_link::gobackn::{GoBackNConfig, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Token gain per cycle (mirrors the serializer's `TORUS_TOKEN_GAIN`).
const TOKEN_GAIN: u64 = 14;
/// Tokens consumed per frame (mirrors the serializer's `TORUS_TOKEN_COST`).
const TOKEN_COST: u64 = 45;
/// Bucket depth: two frames, so the shim can absorb the serializer's own
/// burstiness (its bucket holds `cost + gain - 1` tokens) without ever
/// becoming the tighter bottleneck.
const TOKEN_CAP: u64 = 2 * TOKEN_COST;
/// Bits per frame on the wire, for converting bit-error rate to a per-frame
/// corruption probability.
const FRAME_BITS: u32 = FRAME_BYTES as u32 * 8;

/// Counters accumulated by one link shim (or aggregated across shims).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShimStats {
    /// Data frames put on the wire, including retransmissions.
    pub frames_sent: u64,
    /// Data frames that were retransmissions.
    pub retransmissions: u64,
    /// Data frames lost to corruption or outage.
    pub data_frames_dropped: u64,
    /// Ack frames lost to corruption or outage.
    pub ack_frames_dropped: u64,
    /// Flits delivered in order out of the link layer.
    pub flits_delivered: u64,
}

impl ShimStats {
    /// Accumulates another shim's counters into this one.
    pub fn merge(&mut self, other: &ShimStats) {
        self.frames_sent += other.frames_sent;
        self.retransmissions += other.retransmissions;
        self.data_frames_dropped += other.data_frames_dropped;
        self.ack_frames_dropped += other.ack_frames_dropped;
        self.flits_delivered += other.flits_delivered;
    }

    /// Fraction of data frames that were retransmissions (0 when idle).
    pub fn retransmission_overhead(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.frames_sent as f64
        }
    }
}

/// A cycle-stamped link-layer occurrence, recorded only when event
/// recording is switched on (see [`LinkShim::set_event_recording`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShimEvent {
    /// A data frame was retransmitted (timeout or go-back-N rewind).
    Retransmit,
    /// A data frame was lost to corruption or outage.
    DataFrameDropped,
    /// An ack frame was lost to corruption or outage.
    AckFrameDropped,
}

/// One direction of one lossy external torus link.
pub struct LinkShim {
    /// One-way propagation delay in cycles (same as the ideal wire's).
    latency: u64,
    /// Per-frame corruption probability, `1 - (1 - ber)^240`.
    frame_loss_p: f64,
    /// Outage windows `[from, until)`.
    downs: Vec<(u64, u64)>,
    /// Go-back-N parameters, kept so [`LinkShim::drain_reset`] can restart
    /// the session with a fresh sender.
    gbn: GoBackNConfig,
    tx: Sender,
    rx: Receiver,
    /// Flits already consumed from `rx.delivered`.
    rx_consumed: usize,
    /// Data frames in flight toward the receiver (`None` = lost).
    forward: VecDeque<(u64, Option<Frame>)>,
    /// Cumulative acks in flight back toward the sender (`None` = lost).
    reverse: VecDeque<(u64, Option<u8>)>,
    /// Flit counts of packets queued through the shim, FIFO.
    pending: VecDeque<u8>,
    /// Flits of the front pending packet already delivered.
    head_done: u8,
    /// Serial of the next flit to enqueue (payloads carry serials so the
    /// shim can self-check in-order exactly-once delivery).
    next_enqueue: u64,
    /// Serial of the next flit to offer into the go-back-N window.
    next_offer: u64,
    /// Serial the next delivered flit must carry.
    next_expect: u64,
    tokens: u64,
    tokens_at: u64,
    /// Cycle of the last data-frame transmission (at most one per cycle).
    last_tx: Option<u64>,
    rng: StdRng,
    data_frames_dropped: u64,
    ack_frames_dropped: u64,
    flits_delivered: u64,
    /// Sender counters accumulated across [`LinkShim::drain_reset`] calls
    /// (each reset rebuilds the sender, zeroing its own counters).
    prior_frames_sent: u64,
    prior_retransmissions: u64,
    /// Cycle-stamped event log; `None` (the default) records nothing, so
    /// the fault path's behavior and cost are unchanged unless a flight
    /// recorder asks for events.
    events: Option<Vec<(u64, ShimEvent)>>,
}

impl std::fmt::Debug for LinkShim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkShim")
            .field("latency", &self.latency)
            .field("frame_loss_p", &self.frame_loss_p)
            .field("downs", &self.downs)
            .field("pending", &self.pending.len())
            .field("in_window", &self.tx.in_flight())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl LinkShim {
    /// Creates a shim for one link direction.
    ///
    /// `latency` is the ideal wire's propagation delay; `ber` the per-bit
    /// error probability; `downs` outage windows; `seed` this link's
    /// independent RNG stream (see `FaultSchedule::link_seed`).
    pub fn new(
        latency: u64,
        gbn: GoBackNConfig,
        ber: f64,
        downs: Vec<(u64, u64)>,
        seed: u64,
    ) -> LinkShim {
        assert!((0.0..1.0).contains(&ber), "bit-error rate must be in [0,1)");
        let frame_loss_p = 1.0 - (1.0 - ber).powi(FRAME_BITS as i32);
        LinkShim {
            latency,
            frame_loss_p,
            downs,
            gbn,
            tx: Sender::new(gbn),
            rx: Receiver::new(),
            rx_consumed: 0,
            forward: VecDeque::new(),
            reverse: VecDeque::new(),
            pending: VecDeque::new(),
            head_done: 0,
            next_enqueue: 0,
            next_offer: 0,
            next_expect: 0,
            tokens: TOKEN_CAP,
            tokens_at: 0,
            last_tx: None,
            rng: StdRng::seed_from_u64(seed),
            data_frames_dropped: 0,
            ack_frames_dropped: 0,
            flits_delivered: 0,
            prior_frames_sent: 0,
            prior_retransmissions: 0,
            events: None,
        }
    }

    /// Tears down the link-layer session when the link goes `Down`:
    /// discards every frame in flight, the retransmission window, and all
    /// queued packets, and restarts the sender/receiver state machines
    /// with realigned flit serials. Returns how many packets were still
    /// queued (including a partially delivered head packet) — the caller
    /// owns the actual packet queue and must requeue exactly those
    /// entries through a higher-level recovery path, exactly once.
    /// Cumulative statistics survive the reset.
    pub fn drain_reset(&mut self, now: u64) -> usize {
        let undelivered = self.pending.len();
        self.prior_frames_sent += self.tx.frames_sent;
        self.prior_retransmissions += self.tx.retransmissions;
        self.tx = Sender::new(self.gbn);
        self.rx = Receiver::new();
        self.rx_consumed = 0;
        self.forward.clear();
        self.reverse.clear();
        self.pending.clear();
        self.head_done = 0;
        // Serials stay monotonic across sessions so the in-order
        // self-check keeps holding after the restart.
        self.next_offer = self.next_enqueue;
        self.next_expect = self.next_enqueue;
        self.tokens = TOKEN_CAP;
        self.tokens_at = now;
        self.last_tx = None;
        undelivered
    }

    /// Switches cycle-stamped event recording on or off. Turning it off
    /// discards any events not yet taken.
    pub fn set_event_recording(&mut self, on: bool) {
        self.events = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the events recorded since the last call; empty (and free of
    /// allocation) when recording is off.
    pub fn take_events(&mut self) -> Vec<(u64, ShimEvent)> {
        match &mut self.events {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    #[inline]
    fn log_event(&mut self, now: u64, ev: ShimEvent) {
        if let Some(log) = &mut self.events {
            log.push((now, ev));
        }
    }

    /// Queues one packet of `flits` flits into the link and immediately
    /// tries to transmit (so a fault-free single-flit packet departs the
    /// same cycle, matching the ideal wire's timing).
    pub fn enqueue(&mut self, now: u64, flits: u8) {
        assert!(flits > 0, "packets carry at least one flit");
        self.pending.push_back(flits);
        self.next_enqueue += u64::from(flits);
        self.pump(now);
    }

    /// Advances the link by one cycle: lands acks and data frames whose
    /// propagation delay has elapsed, consumes delivered flits, and
    /// (re)transmits. Returns how many packets finished crossing the link
    /// this cycle; the caller pops that many from its own FIFO.
    pub fn advance(&mut self, now: u64) -> u32 {
        while self.reverse.front().is_some_and(|&(t, _)| t <= now) {
            let (_, ack) = self.reverse.pop_front().unwrap();
            if let Some(ack) = ack {
                self.tx.on_ack(ack, now);
            }
        }
        while self.forward.front().is_some_and(|&(t, _)| t <= now) {
            let (_, frame) = self.forward.pop_front().unwrap();
            if let Some(frame) = frame {
                let ack = self.rx.on_frame(&frame);
                if self.lose(now) {
                    self.ack_frames_dropped += 1;
                    self.log_event(now, ShimEvent::AckFrameDropped);
                    self.reverse.push_back((now + self.latency, None));
                } else {
                    self.reverse.push_back((now + self.latency, Some(ack)));
                }
            }
        }
        let completed = self.consume_delivered();
        self.pump(now);
        completed
    }

    /// Whether the link has fully drained: no queued packets, no frames in
    /// flight, and no unacknowledged frames awaiting (re)transmission.
    pub fn idle(&self) -> bool {
        self.pending.is_empty()
            && self.forward.is_empty()
            && self.reverse.is_empty()
            && self.tx.in_flight() == 0
    }

    /// Flits currently inside the shim (enqueued but not yet delivered).
    pub fn backlog_flits(&self) -> u64 {
        self.next_enqueue - self.next_expect
    }

    /// Packets currently queued through the shim.
    pub fn backlog_packets(&self) -> usize {
        self.pending.len()
    }

    /// Snapshot of this link's counters.
    pub fn stats(&self) -> ShimStats {
        ShimStats {
            frames_sent: self.prior_frames_sent + self.tx.frames_sent,
            retransmissions: self.prior_retransmissions + self.tx.retransmissions,
            data_frames_dropped: self.data_frames_dropped,
            ack_frames_dropped: self.ack_frames_dropped,
            flits_delivered: self.flits_delivered,
        }
    }

    /// Drains newly delivered flits, self-checking order, and returns the
    /// number of whole packets completed.
    fn consume_delivered(&mut self) -> u32 {
        let mut completed = 0;
        while self.rx_consumed < self.rx.delivered.len() {
            let payload = self.rx.delivered[self.rx_consumed];
            self.rx_consumed += 1;
            let serial = u64::from_le_bytes(payload[..8].try_into().unwrap());
            assert_eq!(
                serial, self.next_expect,
                "lossy-link shim: go-back-N delivered flit {serial} while \
                 expecting {} (out-of-order or duplicated delivery)",
                self.next_expect
            );
            self.next_expect += 1;
            self.flits_delivered += 1;
            self.head_done += 1;
            let head = *self
                .pending
                .front()
                .expect("delivered flit without a pending packet");
            if self.head_done == head {
                self.pending.pop_front();
                self.head_done = 0;
                completed += 1;
            }
        }
        // Keep the receiver's delivered log from growing without bound.
        if self.rx_consumed >= 4096 {
            self.rx.delivered.drain(..self.rx_consumed);
            self.rx_consumed = 0;
        }
        completed
    }

    /// Offers queued flits into the window and transmits at most one data
    /// frame (token bucket permitting).
    fn pump(&mut self, now: u64) {
        self.tokens = (self.tokens + TOKEN_GAIN * (now - self.tokens_at)).min(TOKEN_CAP);
        self.tokens_at = now;
        while self.next_offer < self.next_enqueue && self.tx.can_accept() {
            let mut payload = [0u8; 24];
            payload[..8].copy_from_slice(&self.next_offer.to_le_bytes());
            self.tx.offer(payload);
            self.next_offer += 1;
        }
        if self.last_tx == Some(now) || self.tokens < TOKEN_COST {
            return;
        }
        let retrans_before = self.tx.retransmissions;
        if let Some(frame) = self.tx.next_frame(now, self.rx.expected()) {
            self.tokens -= TOKEN_COST;
            self.last_tx = Some(now);
            if self.tx.retransmissions > retrans_before {
                self.log_event(now, ShimEvent::Retransmit);
            }
            if self.lose(now) {
                self.data_frames_dropped += 1;
                self.log_event(now, ShimEvent::DataFrameDropped);
                self.forward.push_back((now + self.latency, None));
            } else {
                self.forward.push_back((now + self.latency, Some(frame)));
            }
        }
    }

    /// Whether a frame put on the wire at `now` is lost: always during an
    /// outage window, otherwise with the per-frame corruption probability.
    fn lose(&mut self, now: u64) -> bool {
        if self
            .downs
            .iter()
            .any(|&(from, until)| from <= now && now < until)
        {
            return true;
        }
        self.frame_loss_p > 0.0 && self.rng.gen_bool(self.frame_loss_p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop_assert, prop_assert_eq};

    fn gbn() -> GoBackNConfig {
        GoBackNConfig {
            window: 64,
            timeout: 192,
        }
    }

    /// Drives the shim to completion, returning (cycle, packets) pairs.
    fn drain(shim: &mut LinkShim, mut now: u64, budget: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let stop = now + budget;
        while !shim.idle() && now < stop {
            now += 1;
            let done = shim.advance(now);
            if done > 0 {
                out.push((now, done));
            }
        }
        assert!(shim.idle(), "shim failed to drain within {budget} cycles");
        out
    }

    #[test]
    fn fault_free_single_flit_matches_ideal_wire_timing() {
        let mut shim = LinkShim::new(44, gbn(), 0.0, Vec::new(), 1);
        shim.enqueue(100, 1);
        let events = drain(&mut shim, 100, 1000);
        // Ideal wire: tail arrives at send + latency.
        assert_eq!(events, vec![(144, 1)]);
        assert_eq!(shim.stats().retransmissions, 0);
    }

    #[test]
    fn fault_free_two_flit_packet_takes_one_extra_cycle() {
        let mut shim = LinkShim::new(44, gbn(), 0.0, Vec::new(), 1);
        shim.enqueue(100, 2);
        let events = drain(&mut shim, 100, 1000);
        // Ideal wire: tail arrival = send + latency + flits - 1.
        assert_eq!(events, vec![(145, 1)]);
    }

    #[test]
    fn lossy_link_retransmits_and_still_delivers_in_order() {
        let mut shim = LinkShim::new(44, gbn(), 2e-3, Vec::new(), 7);
        let mut now = 0;
        for _ in 0..50 {
            shim.enqueue(now, 2);
            now += 3;
        }
        let events = drain(&mut shim, now, 2_000_000);
        let total: u32 = events.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 50);
        let s = shim.stats();
        assert_eq!(s.flits_delivered, 100);
        assert!(s.retransmissions > 0, "2e-3 BER must force retransmissions");
        assert!(s.frames_sent >= 100 + s.retransmissions);
    }

    #[test]
    fn outage_stalls_then_recovers() {
        let mut shim = LinkShim::new(10, gbn(), 0.0, vec![(0, 500)], 3);
        shim.enqueue(0, 1);
        let events = drain(&mut shim, 0, 10_000);
        assert_eq!(events.len(), 1);
        let (cycle, _) = events[0];
        assert!(cycle >= 500, "nothing can cross during the outage");
        assert!(shim.stats().data_frames_dropped > 0);
    }

    #[test]
    fn permanent_outage_never_goes_idle() {
        let mut shim = LinkShim::new(10, gbn(), 0.0, vec![(0, u64::MAX)], 3);
        shim.enqueue(0, 1);
        for now in 1..5_000 {
            assert_eq!(shim.advance(now), 0);
        }
        assert!(!shim.idle());
        assert_eq!(shim.backlog_flits(), 1);
    }

    #[test]
    fn event_recording_matches_counters_and_never_perturbs_delivery() {
        let run = |record: bool| {
            let mut shim = LinkShim::new(44, gbn(), 2e-3, Vec::new(), 7);
            shim.set_event_recording(record);
            let mut now = 0;
            for _ in 0..50 {
                shim.enqueue(now, 2);
                now += 3;
            }
            let mut events = Vec::new();
            let stop = now + 2_000_000;
            let mut deliveries = Vec::new();
            while !shim.idle() && now < stop {
                now += 1;
                let done = shim.advance(now);
                if done > 0 {
                    deliveries.push((now, done));
                }
                events.extend(shim.take_events());
            }
            (deliveries, shim.stats(), events)
        };
        let (del_on, stats_on, events) = run(true);
        let (del_off, stats_off, no_events) = run(false);
        assert_eq!(del_on, del_off, "recording must not change timing");
        assert_eq!(stats_on, stats_off);
        assert!(no_events.is_empty());
        let count = |kind| events.iter().filter(|&&(_, e)| e == kind).count() as u64;
        assert_eq!(count(ShimEvent::Retransmit), stats_on.retransmissions);
        assert_eq!(
            count(ShimEvent::DataFrameDropped),
            stats_on.data_frames_dropped
        );
        assert_eq!(
            count(ShimEvent::AckFrameDropped),
            stats_on.ack_frames_dropped
        );
        assert!(
            events.windows(2).all(|w| w[0].0 <= w[1].0),
            "events are cycle-ordered"
        );
    }

    #[test]
    fn drain_reset_requeues_backlog_and_preserves_stats() {
        // Ten 2-flit packets into a 64-frame window; the link dies while
        // most are still in flight.
        let mut shim = LinkShim::new(44, gbn(), 0.0, vec![(10, u64::MAX)], 1);
        let mut delivered = 0;
        for _ in 0..10 {
            shim.enqueue(0, 2);
        }
        for now in 1..200 {
            delivered += shim.advance(now);
        }
        assert!(!shim.idle(), "permanent outage keeps the shim backlogged");
        let sent_before = shim.stats().frames_sent;
        assert!(sent_before > 0);
        let undelivered = shim.drain_reset(200);
        assert_eq!(undelivered as u32 + delivered, 10);
        assert!(shim.idle(), "reset leaves a clean session");
        assert_eq!(shim.backlog_flits(), 0);
        assert_eq!(
            shim.stats().frames_sent,
            sent_before,
            "cumulative stats survive the reset"
        );
        // The fresh session works: requeue and deliver on a healed link.
        let mut healed = shim;
        healed.downs.clear();
        for _ in 0..undelivered {
            healed.enqueue(200, 2);
        }
        let events = drain(&mut healed, 200, 10_000);
        let total: u32 = events.iter().map(|&(_, n)| n).sum();
        assert_eq!(total as usize, undelivered);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(96))]

        /// The Down-mid-window recovery contract: whatever cycle the link
        /// dies at — before, during, or after the burst; mid-frame,
        /// mid-window, or mid-ack — a `drain_reset` plus requeue of
        /// exactly the reported backlog delivers every packet exactly
        /// once, in order, with no duplicates and no losses.
        #[test]
        fn down_mid_window_requeues_exactly_once(
            onset in 1u64..400,
            outage in 1u64..300,
            flits in proptest::collection::vec(1u8..5, 3..18),
            gap in 0u64..6,
            seed in 0u64..1000,
        ) {
            let total = flits.len() as u32;
            let mut shim = LinkShim::new(44, gbn(), 0.0, vec![(onset, onset + outage)], seed);
            // FIFO of packet ids mirroring the wire's own queue.
            let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
            let mut delivered: Vec<u32> = Vec::new();
            let mut now = 0;
            for (id, &f) in flits.iter().enumerate() {
                shim.enqueue(now, f);
                queue.push_back(id as u32);
                now += gap;
            }
            // Run up to the Down onset, collecting completions.
            while now < onset {
                now += 1;
                for _ in 0..shim.advance(now) {
                    delivered.push(queue.pop_front().expect("completion without a queued packet"));
                }
            }
            // Link declared Down: tear the session down and requeue the
            // reported backlog exactly once, after the outage ends.
            let undelivered = shim.drain_reset(now);
            prop_assert_eq!(undelivered, queue.len(), "backlog mismatch at reset");
            now = onset + outage;
            let requeued: Vec<u32> = queue.iter().copied().collect();
            for &id in &requeued {
                let f = flits[id as usize];
                shim.enqueue(now, f);
            }
            let deadline = now + 100_000;
            while !shim.idle() && now < deadline {
                now += 1;
                for _ in 0..shim.advance(now) {
                    delivered.push(queue.pop_front().expect("completion without a queued packet"));
                }
            }
            prop_assert!(shim.idle(), "shim failed to drain after the outage");
            prop_assert!(queue.is_empty());
            prop_assert_eq!(delivered.len() as u32, total, "every packet exactly once");
            // FIFO order is preserved end to end, so the delivered ids are
            // exactly 0..n in order — no duplicate, no loss, no reorder.
            let expect: Vec<u32> = (0..total).collect();
            prop_assert_eq!(&delivered, &expect);
        }
    }

    #[test]
    fn same_seed_same_schedule_is_reproducible() {
        let run = |seed| {
            let mut shim = LinkShim::new(44, gbn(), 1e-3, Vec::new(), seed);
            let mut now = 0;
            for _ in 0..40 {
                shim.enqueue(now, 1);
                now += 4;
            }
            let events = drain(&mut shim, now, 2_000_000);
            (events, shim.stats())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1);
    }
}
