//! Unit coverage for the configuration lint engine: one scenario per
//! diagnostic code, plus a clean bill of health for the paper defaults.

use anton_analysis::weights::ArbiterWeightSet;
use anton_core::chip::ChanId;
use anton_core::config::MachineConfig;
use anton_core::topology::{Dim, NodeId, Sign, Slice, TorusDir, TorusShape};
use anton_core::vc::VcPolicy;
use anton_fault::{FaultKind, FaultSchedule};
use anton_verify::{lint_config, lint_params, lint_weights, ParamsView, Severity};
use std::collections::HashMap;

fn codes(diags: &[anton_verify::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

fn default_cfg() -> MachineConfig {
    MachineConfig::new(TorusShape::cube(4))
}

#[test]
fn reference_params_are_clean() {
    let cfg = default_cfg();
    let diags = lint_params(&cfg, &ParamsView::reference());
    assert!(diags.is_empty(), "{diags:?}");
    assert!(lint_config(&cfg).is_empty());
}

#[test]
fn av001_fires_for_single_vc_on_a_torus() {
    let mut cfg = default_cfg();
    cfg.vc_policy = VcPolicy::NaiveSingle;
    let diags = lint_config(&cfg);
    let av001: Vec<_> = diags.iter().filter(|d| d.code == "AV001").collect();
    // Both the M and T groups are short of VCs.
    assert_eq!(av001.len(), 2, "{diags:?}");
    assert!(av001.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn av001_does_not_fire_on_a_mesh_degenerate_shape() {
    // A 1x1x1 "torus" has zero usable dimensions; one VC suffices.
    let mut cfg = MachineConfig::new(TorusShape::new(1, 1, 1));
    cfg.vc_policy = VcPolicy::NaiveSingle;
    assert!(!codes(&lint_config(&cfg)).contains(&"AV001"));
}

#[test]
fn av007_av008_buffer_depths() {
    let cfg = default_cfg();
    let mut view = ParamsView::reference();
    view.buffer_depth = 0;
    view.torus_buffer_depth = 0;
    let c = codes(&lint_params(&cfg, &view));
    assert_eq!(c.iter().filter(|c| **c == "AV007").count(), 2, "{c:?}");

    let mut view = ParamsView::reference();
    view.torus_buffer_depth = 8; // below the 28-flit BDP
    let diags = lint_params(&cfg, &view);
    let av008 = diags.iter().find(|d| d.code == "AV008").expect("AV008");
    assert_eq!(av008.severity, Severity::Warning);
}

#[test]
fn av009_latency_validation() {
    let cfg = default_cfg();
    let mut view = ParamsView::reference();
    view.sw_inject_ns = f64::NAN;
    view.handler_dispatch_ns = -1.0;
    view.serdes_wire_ns = 0.0;
    let diags = lint_params(&cfg, &view);
    let av009: Vec<_> = diags.iter().filter(|d| d.code == "AV009").collect();
    assert_eq!(av009.len(), 3, "{diags:?}");
    assert_eq!(
        av009
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count(),
        2
    );
    assert_eq!(
        av009
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count(),
        1
    );
}

#[test]
fn av010_av015_zero_cycles() {
    let cfg = default_cfg();
    let mut view = ParamsView::reference();
    view.torus_link_cycles = 0;
    view.watchdog_cycles = 0;
    let c = codes(&lint_params(&cfg, &view));
    assert!(c.contains(&"AV010"), "{c:?}");
    assert!(c.contains(&"AV015"), "{c:?}");
}

#[test]
fn av014_tracing_into_empty_ring() {
    let cfg = default_cfg();
    let mut view = ParamsView::reference();
    view.trace_events = true;
    view.trace_ring_capacity = 0;
    assert!(codes(&lint_params(&cfg, &view)).contains(&"AV014"));
    // A populated ring is fine.
    view.trace_ring_capacity = 64;
    assert!(lint_params(&cfg, &view).is_empty());
}

#[test]
fn av016_m_bits_range() {
    let cfg = default_cfg();
    let mut view = ParamsView::reference();
    view.arbiter_m_bits = Some(1);
    assert!(codes(&lint_params(&cfg, &view)).contains(&"AV016"));
    view.arbiter_m_bits = Some(17);
    assert!(codes(&lint_params(&cfg, &view)).contains(&"AV016"));
    view.arbiter_m_bits = Some(4);
    assert!(lint_params(&cfg, &view).is_empty());
}

#[test]
fn av018_energy_coefficients() {
    let cfg = default_cfg();
    let mut view = ParamsView::reference();
    view.energy_fixed_pj = f64::INFINITY;
    view.energy_per_flip_pj = -0.1;
    let diags = lint_params(&cfg, &view);
    let av018: Vec<_> = diags.iter().filter(|d| d.code == "AV018").collect();
    assert_eq!(av018.len(), 2, "{diags:?}");
    assert!(av018.iter().any(|d| d.severity == Severity::Error));
    assert!(av018.iter().any(|d| d.severity == Severity::Warning));
}

#[test]
fn av019_shard_count_bounds() {
    let cfg = default_cfg();
    let mut view = ParamsView::reference();
    view.shards = 0;
    let diags = lint_params(&cfg, &view);
    let zero = diags.iter().find(|d| d.code == "AV019").expect("AV019");
    assert_eq!(zero.severity, Severity::Error);

    // One shard per node is the maximum a 4x4x4 machine admits.
    let mut view = ParamsView::reference();
    view.shards = 64;
    assert!(!codes(&lint_params(&cfg, &view)).contains(&"AV019"));
    view.shards = 65;
    let diags = lint_params(&cfg, &view);
    let over = diags.iter().find(|d| d.code == "AV019").expect("AV019");
    assert_eq!(over.severity, Severity::Error);
}

fn x_plus_link() -> (NodeId, ChanId) {
    let dir = TorusDir {
        dim: Dim::X,
        sign: Sign::Plus,
    };
    (
        NodeId(0),
        ChanId {
            dir,
            slice: Slice(0),
        },
    )
}

#[test]
fn av011_fault_on_nonexistent_link() {
    let cfg = default_cfg();
    let (_, chan) = x_plus_link();
    // 4x4x4 has nodes 0..64, so node 64 is out of range.
    let sched = FaultSchedule::uniform(1, 0.0).with_fault(
        NodeId(64),
        chan,
        FaultKind::Degraded { ber: 1e-9 },
    );
    let mut view = ParamsView::reference();
    view.fault = Some(&sched);
    let diags = lint_params(&cfg, &view);
    let av011 = diags.iter().find(|d| d.code == "AV011").expect("AV011");
    assert_eq!(av011.severity, Severity::Error);
}

#[test]
fn av011_warns_on_extent_1_dimension() {
    let cfg = MachineConfig::new(TorusShape::new(4, 4, 1));
    let dir = TorusDir {
        dim: Dim::Z,
        sign: Sign::Plus,
    };
    let chan = ChanId {
        dir,
        slice: Slice(0),
    };
    let sched = FaultSchedule::uniform(1, 0.0).with_fault(
        NodeId(0),
        chan,
        FaultKind::Degraded { ber: 1e-9 },
    );
    let mut view = ParamsView::reference();
    view.fault = Some(&sched);
    let diags = lint_params(&cfg, &view);
    let av011 = diags.iter().find(|d| d.code == "AV011").expect("AV011");
    assert_eq!(av011.severity, Severity::Warning);
}

#[test]
fn av012_av013_bad_ber_and_empty_window() {
    let cfg = default_cfg();
    let (from, chan) = x_plus_link();
    let mut sched = FaultSchedule::uniform(1, 1.5); // default BER out of range
    sched = sched
        .with_fault(from, chan, FaultKind::Degraded { ber: -0.5 })
        .with_fault(
            from,
            chan,
            FaultKind::Down {
                from_cycle: 100,
                until_cycle: 100,
            },
        );
    let mut view = ParamsView::reference();
    view.fault = Some(&sched);
    let diags = lint_params(&cfg, &view);
    let c = codes(&diags);
    assert_eq!(c.iter().filter(|c| **c == "AV012").count(), 2, "{c:?}");
    assert!(c.contains(&"AV013"), "{c:?}");
}

#[test]
fn av017_gobackn_window_and_timeout() {
    let cfg = default_cfg();
    let mut sched = FaultSchedule::uniform(1, 0.0);
    sched.gbn.window = 0;
    sched.gbn.timeout = 10; // below 2 * 44 cycles round trip
    let mut view = ParamsView::reference();
    view.fault = Some(&sched);
    let diags = lint_params(&cfg, &view);
    let av017: Vec<_> = diags.iter().filter(|d| d.code == "AV017").collect();
    assert_eq!(av017.len(), 2, "{diags:?}");
    assert!(av017.iter().any(|d| d.severity == Severity::Error));
    assert!(av017.iter().any(|d| d.severity == Severity::Warning));
    // window 128 wraps the sequence-number space.
    sched.gbn.window = 128;
    sched.gbn.timeout = 1_000;
    let mut view = ParamsView::reference();
    view.fault = Some(&sched);
    assert!(codes(&lint_params(&cfg, &view)).contains(&"AV017"));
}

fn weight_set(m_bits: u32, row: Vec<u32>, num_patterns: usize) -> ArbiterWeightSet {
    let mut tables = HashMap::new();
    tables.insert((NodeId(0), 0usize, 0usize), vec![row]);
    ArbiterWeightSet {
        m_bits,
        tables,
        chan_tables: HashMap::new(),
        input_tables: HashMap::new(),
        num_patterns,
    }
}

#[test]
fn av016_weight_set_lints() {
    // Clean set.
    assert!(lint_weights(&weight_set(4, vec![1, 15], 2)).is_empty());
    // Zero weight never wins arbitration.
    let diags = lint_weights(&weight_set(4, vec![0, 3], 2));
    assert_eq!(codes(&diags), vec!["AV016"]);
    // Overflowing the M-bit field.
    let diags = lint_weights(&weight_set(4, vec![16, 3], 2));
    assert_eq!(codes(&diags), vec!["AV016"]);
    // Row not covering every pattern.
    let diags = lint_weights(&weight_set(4, vec![1], 2));
    assert_eq!(codes(&diags), vec!["AV016"]);
    // Out-of-range m_bits short-circuits.
    let diags = lint_weights(&weight_set(0, vec![1, 2], 2));
    assert_eq!(codes(&diags), vec!["AV016"]);
}

#[test]
fn diagnostics_render_and_export() {
    let mut cfg = default_cfg();
    cfg.vc_policy = VcPolicy::NaiveSingle;
    let diags = lint_config(&cfg);
    let d = &diags[0];
    let text = format!("{d}");
    assert!(text.starts_with("error[AV001]:"), "{text}");
    let j = d.to_json();
    assert_eq!(j.get("code").and_then(|v| v.as_str()), Some("AV001"));
    assert_eq!(j.get("severity").and_then(|v| v.as_str()), Some("error"));
    assert!(j.get("context").is_some());
}
