//! The topology-agnostic certification engine on shapes beyond the cubes
//! the rest of the suite leans on: rectangular tori, degenerate `k = 2`
//! rings, and randomly degraded route tables.
//!
//! Everything here goes through the one engine
//! (`build_routing_graph`/`certify_routing`): the dimension-order torus
//! instance via [`certify`]/[`certify_family`], and graph-generated route
//! tables via [`certify_tables`]. The property test closes the loop the
//! way `counterexample.rs` does for the healthy torus — any cycle the
//! certifier reports must come with witness routes that re-trace, step
//! for step, to real routes holding the cycle's edges.

use anton_core::config::MachineConfig;
use anton_core::net::RoutePath;
use anton_core::route_table::DownLinkSet;
use anton_core::topology::{NodeId, Slice, TorusDir, TorusShape};
use anton_core::trace::trace_table_hops;
use anton_verify::{
    certify, certify_family, certify_tables, cross_check, DeadlockCertificate, VerifyModel,
};
use proptest::prelude::*;

/// Rectangular tori — odd extents, mixed radixes — certify acyclic
/// through the generic engine, and the engine's graph agrees with the
/// route-enumerating checker on a sampled endpoint set.
#[test]
fn rectangular_tori_certify_through_the_generic_engine() {
    for shape in [TorusShape::new(4, 3, 2), TorusShape::new(5, 4, 3)] {
        let cfg = MachineConfig::new(shape);
        let cert = certify(&VerifyModel::new(cfg.clone()));
        assert!(cert.acyclic, "{shape}: {cert}");
        let cc = cross_check(
            &cfg,
            &anton_verify::RouteEnumeration {
                src_endpoints: vec![0],
                dst_endpoints: vec![15],
            },
        );
        assert!(cc.verdicts_agree(), "{shape}");
        assert!(
            cc.enumerated_subset_of_symbolic,
            "{shape}: enumeration found an edge the engine's graph lacks"
        );
    }
}

/// The long-arc degraded family through the same engine: acyclic on
/// 4×3×2 (no ring long enough to couple slices), cyclic on 5×4×3 (the
/// `k = 5` rings admit crossed long arcs), with a concrete minimal
/// counterexample either way the verdict lands.
#[test]
fn degraded_family_verdicts_on_rectangular_tori() {
    let acyclic = certify_family(&MachineConfig::new(TorusShape::new(4, 3, 2)));
    assert!(acyclic.acyclic, "{acyclic}");
    assert!(acyclic.counterexample.is_none());

    let cyclic = certify_family(&MachineConfig::new(TorusShape::new(5, 4, 3)));
    assert!(!cyclic.acyclic, "{cyclic}");
    let ce = cyclic.counterexample.as_ref().expect("counterexample");
    assert!(ce.cycle.len() >= 2);
    assert!(!ce.witnesses.is_empty(), "no witness routes synthesized");
}

/// Degenerate `k = 2` rings: every hop is simultaneously the short and
/// the long way around, the sign tie-break pins arcs to the plus
/// direction, and both the healthy model and the degraded family stay
/// acyclic through the engine.
#[test]
fn k2_degenerate_rings_certify() {
    for shape in [
        TorusShape::new(2, 1, 1),
        TorusShape::new(2, 2, 1),
        TorusShape::new(2, 2, 2),
    ] {
        let cfg = MachineConfig::new(shape);
        let cert = certify(&VerifyModel::new(cfg.clone()));
        assert!(cert.acyclic, "{shape}: {cert}");
        let family = certify_family(&cfg);
        assert!(family.acyclic, "{shape}: {family}");
    }
}

/// Every witness riding on a certificate's counterexample must re-trace
/// to a real route: walking the witness hops through the reference
/// tracer (run-ordered, real datelines — the superset semantics covering
/// both dimension-order and table routes) must reproduce the exact
/// `holds -> waits_for` step pair, and that pair must be a cycle edge.
fn assert_witnesses_retrace(cfg: &MachineConfig, cert: &DeadlockCertificate) {
    let ce = cert.counterexample.as_ref().expect("counterexample");
    assert!(!ce.witnesses.is_empty(), "cycle reported without witnesses");
    for w in &ce.witnesses {
        let RoutePath::Torus { hops, slice } = &w.path else {
            panic!("torus witness {w} has a non-torus path");
        };
        let steps = trace_table_hops(
            cfg,
            cfg.shape.coord(w.src.node),
            Some(w.src.ep),
            hops,
            *slice,
            Some(w.dst.ep),
            &mut |n, d| cfg.shape.hop_crosses_dateline(n, d),
        );
        assert!(
            steps
                .windows(2)
                .any(|p| p[0] == w.holds && p[1] == w.waits_for),
            "witness {w} does not reproduce its edge"
        );
        let on_cycle = (0..ce.cycle.len())
            .any(|i| ce.cycle[i] == w.holds && ce.cycle[(i + 1) % ce.cycle.len()] == w.waits_for);
        assert!(on_cycle, "witness {w} is not a cycle edge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random down-link sets on a 3×3×3 torus: whatever route tables the
    /// graph-based generator produces, the certifier either proves the
    /// installed system acyclic or hands back a concrete cycle whose
    /// witness routes re-trace to real routes. No third outcome.
    #[test]
    fn random_route_tables_certify_or_witness(
        raw in proptest::collection::vec((0usize..27, 0usize..6, 0usize..2), 0..4),
    ) {
        let cfg = MachineConfig::new(TorusShape::cube(3));
        let shape = cfg.shape;
        let mut downs = DownLinkSet::empty(shape);
        for (node, dir, slice) in raw {
            downs.insert(
                NodeId(node as u32),
                anton_core::chip::ChanId {
                    dir: TorusDir::ALL[dir],
                    slice: Slice::ALL[slice],
                },
            );
        }
        let (tables, diags) = anton_verify::build_degraded_tables(&cfg, &downs);
        // Generation may legitimately fail (partitioned ring); only a
        // complete table set reaches the install gate.
        prop_assume!(tables.len() == Slice::ALL.len() && diags.is_empty());
        let cert = certify_tables(&cfg, &tables);
        if !cert.acyclic {
            assert_witnesses_retrace(&cfg, &cert);
        }
    }
}
