//! Cross-checks of the symbolic dependency-graph construction against the
//! route-enumerating checker in `anton-analysis`.
//!
//! The symbolic graph is claimed to be *exactly* the union of all unicast
//! route dependency edges. These tests pin that claim:
//!
//! - on tiny machines, the symbolic edge set must equal the full
//!   enumeration (every endpoint pair) edge for edge;
//! - on every torus up to 4×4×4 (and degenerate/rectangular shapes), the
//!   verdict must agree with `build_unicast_dep_graph`, and the sampled
//!   enumeration must be a subset of the symbolic graph.

use anton_core::config::MachineConfig;
use anton_core::topology::TorusShape;
use anton_core::vc::VcPolicy;
use anton_verify::{cross_check, full_enumeration, RouteEnumeration};

fn cfg(shape: TorusShape, policy: VcPolicy) -> MachineConfig {
    let mut cfg = MachineConfig::new(shape);
    cfg.vc_policy = policy;
    cfg
}

fn sampled() -> RouteEnumeration {
    RouteEnumeration {
        src_endpoints: vec![0],
        dst_endpoints: vec![15],
    }
}

#[test]
fn edge_sets_identical_on_2x2x2_all_policies() {
    for policy in [VcPolicy::Anton, VcPolicy::Baseline2n, VcPolicy::NaiveSingle] {
        let cfg = cfg(TorusShape::cube(2), policy);
        let cc = cross_check(&cfg, &full_enumeration(&cfg));
        assert!(
            cc.edges_equal,
            "{policy}: symbolic ({} edges) != enumerated ({} edges)",
            cc.symbolic_edges, cc.enumerated_edges
        );
        assert!(cc.verdicts_agree(), "{policy}: verdicts disagree");
    }
}

#[test]
fn edge_sets_identical_on_rectangular_3x2x1() {
    // Exercises odd extents, a k=2 dimension (plus-only tie-break), and a
    // degenerate k=1 dimension in one shape.
    let cfg = cfg(TorusShape::new(3, 2, 1), VcPolicy::Anton);
    let cc = cross_check(&cfg, &full_enumeration(&cfg));
    assert!(
        cc.edges_equal,
        "symbolic ({} edges) != enumerated ({} edges)",
        cc.symbolic_edges, cc.enumerated_edges
    );
    assert!(cc.symbolic_acyclic);
}

#[test]
fn verdicts_agree_on_cubes_up_to_4() {
    for k in [2u8, 3, 4] {
        for policy in [VcPolicy::Anton, VcPolicy::Baseline2n, VcPolicy::NaiveSingle] {
            let cfg = cfg(TorusShape::cube(k), policy);
            let cc = cross_check(&cfg, &sampled());
            assert!(
                cc.verdicts_agree(),
                "k={k} {policy}: symbolic {} vs enumerated {}",
                cc.symbolic_acyclic,
                cc.enumerated_acyclic
            );
            assert!(
                cc.enumerated_subset_of_symbolic,
                "k={k} {policy}: enumeration found an edge the symbolic graph lacks"
            );
            // The safe policies must actually certify; the naive one must not.
            let expect_acyclic = policy != VcPolicy::NaiveSingle;
            assert_eq!(cc.symbolic_acyclic, expect_acyclic, "k={k} {policy}");
        }
    }
}

#[test]
fn verdicts_agree_on_degenerate_and_rectangular_shapes() {
    for shape in [
        TorusShape::new(8, 1, 1),
        TorusShape::new(4, 3, 2),
        TorusShape::new(1, 1, 1),
        TorusShape::new(2, 4, 1),
    ] {
        for policy in [VcPolicy::Anton, VcPolicy::Baseline2n] {
            let cfg = cfg(shape, policy);
            let cc = cross_check(&cfg, &sampled());
            assert!(cc.verdicts_agree(), "{shape} {policy}");
            assert!(cc.enumerated_subset_of_symbolic, "{shape} {policy}");
            assert!(cc.symbolic_acyclic, "{shape} {policy}");
        }
    }
}
