//! Certification of the full-size machine and counterexample extraction on
//! broken configurations.

use anton_core::config::MachineConfig;
use anton_core::net::RoutePath;
use anton_core::topology::TorusShape;
use anton_core::trace::trace_hops_with;
use anton_core::vc::VcPolicy;
use anton_verify::{certify, verify_config, verify_model, Severity, VerifyModel};

/// The paper's default machine certifies deadlock-free without enumerating
/// a single route. The node/edge counts are pinned: the trait-based
/// certification engine must produce a graph edge-identical to the
/// original hard-wired dimension-order model.
#[test]
fn default_8x8x8_certifies_acyclic() {
    let cfg = MachineConfig::new(TorusShape::cube(8));
    let cert = certify(&VerifyModel::new(cfg));
    assert!(cert.acyclic, "{cert}");
    assert_eq!(cert.nodes, 198_912, "{cert}");
    assert_eq!(cert.edges, 431_232, "{cert}");
    assert!(cert.counterexample.is_none());
}

#[test]
fn baseline_8x8x8_certifies_acyclic() {
    let mut cfg = MachineConfig::new(TorusShape::cube(8));
    cfg.vc_policy = VcPolicy::Baseline2n;
    let cert = certify(&VerifyModel::new(cfg));
    assert!(cert.acyclic, "{cert}");
}

fn assert_counterexample_valid(model: &VerifyModel) {
    let cert = certify(model);
    assert!(!cert.acyclic, "expected a dependency cycle: {cert}");
    let ce = cert.counterexample.as_ref().expect("counterexample");
    assert!(ce.cycle.len() >= 2, "cycle of length {}", ce.cycle.len());
    assert!(!ce.witnesses.is_empty(), "no witness routes synthesized");
    // Every reported witness must re-trace to a route that holds the edge's
    // first (channel, VC) while requesting the second.
    for w in &ce.witnesses {
        let src = model.cfg.shape.coord(w.src.node);
        let RoutePath::Torus { hops, slice } = &w.path else {
            panic!("torus witness {w} has a non-torus path");
        };
        let steps = trace_hops_with(
            &model.cfg,
            src,
            Some(w.src.ep),
            hops,
            *slice,
            Some(w.dst.ep),
            &mut |n, d| model.crosses(n, d),
        );
        assert!(
            steps
                .windows(2)
                .any(|p| p[0] == w.holds && p[1] == w.waits_for),
            "witness {w} does not reproduce its edge"
        );
        // And every witness edge must lie on the reported cycle.
        let on_cycle = (0..ce.cycle.len())
            .any(|i| ce.cycle[i] == w.holds && ce.cycle[(i + 1) % ce.cycle.len()] == w.waits_for);
        assert!(on_cycle, "witness {w} is not a cycle edge");
    }
}

/// Disabling dateline promotion on a 4×4×4 torus must produce a concrete
/// channel/VC ring with validated witness routes.
#[test]
fn datelines_off_yields_concrete_cycle() {
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let model = VerifyModel::without_datelines(cfg);
    assert_counterexample_valid(&model);
    // And the report surfaces it as AV003 + AV002.
    let report = verify_model(&model);
    assert!(report.has_errors());
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"AV003"), "{codes:?}");
    assert!(codes.contains(&"AV002"), "{codes:?}");
}

/// A VC budget below n+1 (the single-VC negative control) must produce a
/// concrete cycle on the full-size machine.
#[test]
fn naive_single_vc_8x8x8_yields_concrete_cycle() {
    let mut cfg = MachineConfig::new(TorusShape::cube(8));
    cfg.vc_policy = VcPolicy::NaiveSingle;
    assert_counterexample_valid(&VerifyModel::new(cfg.clone()));
    let report = verify_config(&cfg);
    assert!(report.has_errors());
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"AV001"), "{codes:?}");
    assert!(codes.contains(&"AV002"), "{codes:?}");
}

/// The clean default produces a clean report, exportable as JSON.
#[test]
fn clean_config_report_is_clean_and_exports_json() {
    let cfg = MachineConfig::new(TorusShape::cube(4));
    let report = verify_config(&cfg);
    assert!(!report.has_errors(), "{:?}", report.diagnostics);
    assert_eq!(
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count(),
        0
    );
    let j = report.to_json();
    assert_eq!(j.get("ok").and_then(|v| v.as_bool()), Some(true));
    let text = j.to_pretty_string();
    let back = anton_obs::json::Json::parse(&text).expect("report JSON parses");
    assert_eq!(back.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert!(report.certificate.as_ref().unwrap().acyclic);
}
