//! Dense `(channel, VC)` dependency graph for the symbolic verifier.
//!
//! The symbolic construction visits millions of edges on a full-size
//! machine, so unlike [`anton_analysis::deadlock::DepGraph`] (which interns
//! nodes through a `HashMap`), this graph addresses every possible
//! `(link, VC)` pair arithmetically through a
//! [`Topology`](anton_core::net::Topology): each node of the machine
//! contributes a fixed block of link slots, and an index is
//! `(node · slots + slot) · vcs + vc`. Absent pairs simply keep an empty
//! adjacency list. The graph itself is topology-agnostic — the same
//! structure certifies a torus and a full mesh.

use anton_core::net::Topology;
use anton_core::trace::GlobalLink;
use anton_core::vc::Vc;

/// A dependency graph over every addressable `(link, VC)` pair of one
/// topology, with adjacency stored densely by arithmetic index.
#[derive(Debug)]
pub struct SymGraph<'t> {
    topo: &'t dyn Topology,
    vcs: usize,
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl<'t> SymGraph<'t> {
    /// An empty graph sized for `topo` with `vcs` virtual channels per link.
    pub fn new(topo: &'t dyn Topology, vcs: usize) -> SymGraph<'t> {
        let n = topo.num_nodes() * topo.slots_per_node() * vcs;
        SymGraph {
            topo,
            vcs,
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// The dense index of a `(link, VC)` pair, or `None` when the topology
    /// cannot address the link (or the VC exceeds the graph's budget).
    pub fn index_of(&self, link: &GlobalLink, vc: Vc) -> Option<u32> {
        if usize::from(vc.0) >= self.vcs {
            return None;
        }
        let (node, slot) = self.topo.slot(link)?;
        Some(((node * self.topo.slots_per_node() + slot) * self.vcs + usize::from(vc.0)) as u32)
    }

    /// The dense index of a `(link, VC)` pair. Panics when the topology
    /// cannot address it — use [`SymGraph::index_of`] for untrusted input.
    pub fn index(&self, link: &GlobalLink, vc: Vc) -> u32 {
        self.index_of(link, vc)
            .unwrap_or_else(|| panic!("topology cannot address {link}@{vc}"))
    }

    /// Inverse of [`SymGraph::index`].
    pub fn decode(&self, idx: u32) -> (GlobalLink, Vc) {
        let idx = idx as usize;
        let vc = Vc((idx % self.vcs) as u8);
        let rest = idx / self.vcs;
        let slots = self.topo.slots_per_node();
        let link = self
            .topo
            .link_at(rest / slots, rest % slots)
            .expect("decode of an index the topology populated");
        (link, vc)
    }

    /// Adds one dependency edge (idempotent). Panics on unaddressable
    /// endpoints; the engine validates links before insertion.
    pub fn add_edge(&mut self, from: (GlobalLink, Vc), to: (GlobalLink, Vc)) {
        let f = self.index(&from.0, from.1);
        let t = self.index(&to.0, to.1);
        self.add_edge_idx(f, t);
    }

    /// Adds one dependency edge by pre-validated dense indices (idempotent).
    pub fn add_edge_idx(&mut self, f: u32, t: u32) {
        let list = &mut self.adj[f as usize];
        if !list.contains(&t) {
            list.push(t);
            self.num_edges += 1;
        }
    }

    /// Number of `(link, VC)` pairs with at least one incident edge.
    pub fn num_live_nodes(&self) -> usize {
        let mut has_in = vec![false; self.adj.len()];
        for tos in &self.adj {
            for &t in tos {
                has_in[t as usize] = true;
            }
        }
        self.adj
            .iter()
            .zip(&has_in)
            .filter(|(out, &inc)| !out.is_empty() || inc)
            .count()
    }

    /// Total dependency edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Iterates every edge as decoded `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = ((GlobalLink, Vc), (GlobalLink, Vc))> + '_ {
        self.adj.iter().enumerate().flat_map(move |(f, tos)| {
            tos.iter()
                .map(move |&t| (self.decode(f as u32), self.decode(t)))
        })
    }

    /// Finds a dependency cycle, if one exists, as the index sequence around
    /// the cycle (same three-color iterative DFS as the enumerating
    /// checker, over the dense index space).
    pub fn find_cycle(&self) -> Option<Vec<u32>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.adj.len();
        let mut color = vec![Color::White; n];
        let mut parent = vec![u32::MAX; n];
        for start in 0..n {
            if color[start] != Color::White || self.adj[start].is_empty() {
                continue;
            }
            let mut stack = vec![(start as u32, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                let edges = &self.adj[u as usize];
                if *ei < edges.len() {
                    let v = edges[*ei];
                    *ei += 1;
                    match color[v as usize] {
                        Color::White => {
                            color[v as usize] = Color::Gray;
                            parent[v as usize] = u;
                            stack.push((v, 0));
                        }
                        Color::Gray => {
                            let mut cycle = vec![v];
                            let mut cur = u;
                            while cur != v {
                                cycle.push(cur);
                                cur = parent[cur as usize];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u as usize] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Shortens a found cycle: BFS from (a sample of) the cycle's nodes for
    /// the shortest cycle through each, returning the overall shortest.
    /// Skipped (returns the input) when the graph is too large for the
    /// extra passes to be worth setup time.
    pub fn minimize_cycle(&self, cycle: Vec<u32>) -> Vec<u32> {
        const MAX_EDGES: usize = 2_000_000;
        const MAX_STARTS: usize = 24;
        if self.num_edges > MAX_EDGES {
            return cycle;
        }
        let mut best = cycle.clone();
        for &s in cycle.iter().take(MAX_STARTS) {
            // BFS from s's successors back to s.
            let mut parent = vec![u32::MAX; self.adj.len()];
            let mut queue = std::collections::VecDeque::new();
            for &t in &self.adj[s as usize] {
                if t == s {
                    return vec![s]; // self-loop: cannot do better
                }
                if parent[t as usize] == u32::MAX {
                    parent[t as usize] = s;
                    queue.push_back(t);
                }
            }
            'bfs: while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u as usize] {
                    if v == s {
                        // Reconstruct s -> ... -> u -> s.
                        let mut path = vec![u];
                        let mut cur = u;
                        while cur != s {
                            cur = parent[cur as usize];
                            path.push(cur);
                        }
                        path.reverse();
                        if path.len() < best.len() {
                            best = path;
                        }
                        break 'bfs;
                    }
                    if parent[v as usize] == u32::MAX {
                        parent[v as usize] = u;
                        queue.push_back(v);
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::chip::{ChanId, LocalLink, MeshCoord, MeshDir};
    use anton_core::config::MachineConfig;
    use anton_core::net::TorusTopology;
    use anton_core::topology::{NodeId, Slice, TorusDir, TorusShape};

    #[test]
    fn index_round_trips_every_slot() {
        let cfg = MachineConfig::new(TorusShape::new(3, 2, 1));
        let topo = TorusTopology::new(&cfg);
        let g = SymGraph::new(&topo, 4);
        let node = NodeId(4);
        let mut links: Vec<GlobalLink> = Vec::new();
        for r in MeshCoord::all() {
            for dir in MeshDir::ALL {
                links.push(GlobalLink::Local {
                    node,
                    link: LocalLink::Mesh { from: r, dir },
                });
            }
            links.push(GlobalLink::Local {
                node,
                link: LocalLink::Skip { from: r },
            });
        }
        for c in ChanId::all() {
            links.push(GlobalLink::Local {
                node,
                link: LocalLink::ChanToRouter(c),
            });
            links.push(GlobalLink::Local {
                node,
                link: LocalLink::RouterToChan(c),
            });
            links.push(GlobalLink::Torus {
                from: node,
                dir: c.dir,
                slice: c.slice,
            });
        }
        for e in cfg.chip.endpoints() {
            links.push(GlobalLink::Local {
                node,
                link: LocalLink::EpToRouter(e),
            });
            links.push(GlobalLink::Local {
                node,
                link: LocalLink::RouterToEp(e),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for link in links {
            for vc in 0..4u8 {
                let idx = g.index(&link, Vc(vc));
                assert!(seen.insert(idx), "index collision at {link} vc{vc}");
                assert_eq!(g.decode(idx), (link, Vc(vc)));
            }
        }
        // Links of other topologies are not addressable, only rejected.
        let foreign = GlobalLink::Direct {
            from: NodeId(0),
            to: NodeId(1),
        };
        assert_eq!(g.index_of(&foreign, Vc(0)), None);
    }

    #[test]
    fn planted_cycle_found_and_minimized() {
        let cfg = MachineConfig::new(TorusShape::cube(2));
        let topo = TorusTopology::new(&cfg);
        let mut g = SymGraph::new(&topo, 2);
        let t = |n: u32| {
            (
                GlobalLink::Torus {
                    from: NodeId(n),
                    dir: TorusDir::ALL[0],
                    slice: Slice(0),
                },
                Vc(0),
            )
        };
        // A long cycle 0->1->2->3->0 plus a chord 1->0 making a 2-cycle.
        g.add_edge(t(0), t(1));
        g.add_edge(t(1), t(2));
        g.add_edge(t(2), t(3));
        g.add_edge(t(3), t(0));
        g.add_edge(t(1), t(0));
        let cycle = g.find_cycle().expect("planted cycle");
        let min = g.minimize_cycle(cycle);
        assert_eq!(min.len(), 2, "chord gives a 2-cycle");
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let cfg = MachineConfig::new(TorusShape::cube(2));
        let topo = TorusTopology::new(&cfg);
        let mut g = SymGraph::new(&topo, 2);
        let t = |n: u32, v: u8| {
            (
                GlobalLink::Torus {
                    from: NodeId(n),
                    dir: TorusDir::ALL[2],
                    slice: Slice(1),
                },
                Vc(v),
            )
        };
        g.add_edge(t(0, 0), t(1, 0));
        g.add_edge(t(1, 0), t(0, 1));
        g.add_edge(t(0, 1), t(1, 1));
        assert!(g.find_cycle().is_none());
    }
}
