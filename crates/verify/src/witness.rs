//! Concrete witness-route synthesis for dependency-cycle counterexamples.
//!
//! When the symbolic verifier finds a `(channel, VC)` cycle, each edge of
//! the cycle carries provenance ([`crate::symbolic::EdgeCtx`]) describing
//! the *generalized* route fragment that produced it. This module turns
//! that provenance back into a *concrete* route — source endpoint, torus
//! hop sequence, slice, destination endpoint — and validates it by
//! re-tracing through the reference tracer
//! ([`anton_core::trace::trace_hops_with`]) under the model's dateline
//! rule: the traced route must request the edge's two `(channel, VC)`
//! pairs consecutively. Only validated witnesses are reported.
//!
//! Synthesis exploits the promotion invariant `m_i = i`: any history of
//! already-routed dimensions yields the same M-state, so a minimal prefix
//! of one `+1` arc per masked dimension reproduces the abstract state
//! exactly.

use anton_analysis::deadlock::ChannelVc;
use anton_core::config::GlobalEndpoint;
use anton_core::topology::{Dim, NodeCoord, Sign, Slice, TorusDir};
use anton_core::trace::trace_hops_with;

use crate::model::VerifyModel;
use crate::report::WitnessRoute;
use crate::symbolic::{dim_bit, CaptureSink, EdgeCtx, EntryCtx, ExitCtx};

/// Maximum witnesses reported per counterexample (a minimized cycle can
/// still be long; a handful of concrete routes is enough to act on).
const MAX_WITNESSES: usize = 8;

/// Synthesizes validated witness routes for the edges of `cycle` from the
/// provenance gathered in `cap`. With `complete`, every cycle edge is
/// expected to have been re-generated (a pure symbolic cycle); without it,
/// edges missing provenance are silently skipped — they came from an
/// overlaid explicit route-table walk and are witnessed separately.
pub(crate) fn synthesize(
    model: &VerifyModel,
    cycle: &[ChannelVc],
    cap: &CaptureSink,
    complete: bool,
) -> Vec<WitnessRoute> {
    let mut out = Vec::new();
    for i in 0..cycle.len() {
        if out.len() >= MAX_WITNESSES {
            break;
        }
        let holds = cycle[i];
        let waits_for = cycle[(i + 1) % cycle.len()];
        let Some(Some(ctx)) = cap.wanted.get(&(holds, waits_for)) else {
            debug_assert!(
                !complete,
                "cycle edge {}→{} not re-generated",
                holds.0, waits_for.0
            );
            continue;
        };
        if let Some(w) = witness_for(model, ctx, holds, waits_for) {
            out.push(w);
        } else {
            debug_assert!(
                !complete,
                "witness for {}→{} failed validation",
                holds.0, waits_for.0
            );
        }
    }
    out
}

/// Steps a coordinate backwards along `(dim, sign)` by `len` hops.
fn step_back(model: &VerifyModel, at: NodeCoord, dim: Dim, sign: Sign, len: u8) -> NodeCoord {
    let k = i32::from(model.cfg.shape.k(dim));
    let c = (i32::from(at.get(dim)) - sign.delta() * i32::from(len)).rem_euclid(k) as u8;
    at.with(dim, c)
}

/// Prepends one `+1` arc per dimension in `mask`, ending at `arc_start`:
/// returns the route's start node and the prefix hop sequence.
fn prefix_for(model: &VerifyModel, mask: u8, arc_start: NodeCoord) -> (NodeCoord, Vec<TorusDir>) {
    let mut src = arc_start;
    let mut hops = Vec::new();
    for d in Dim::ALL {
        if mask & dim_bit(d) != 0 {
            src = step_back(model, src, d, Sign::Plus, 1);
            hops.push(TorusDir::new(d, Sign::Plus));
        }
    }
    (src, hops)
}

/// Builds and validates the witness route for one cycle edge.
fn witness_for(
    model: &VerifyModel,
    ctx: &EdgeCtx,
    holds: ChannelVc,
    waits_for: ChannelVc,
) -> Option<WitnessRoute> {
    use anton_core::chip::LocalEndpointId;
    let cfg = &model.cfg;
    let (src_node, src_ep, mut hops, slice, dst_ep) = match *ctx {
        EdgeCtx::Ring {
            dim,
            sign,
            slice,
            start,
            pre_mask,
            hop,
        } => {
            let (src, mut hops) = prefix_for(model, pre_mask, start);
            let dir = TorusDir::new(dim, sign);
            for _ in 0..=hop {
                hops.push(dir);
            }
            (src, LocalEndpointId(0), hops, slice, LocalEndpointId(0))
        }
        EdgeCtx::MPhase { node, entry, exit } => {
            let (src, src_ep, hops, entry_slice) = match entry {
                EntryCtx::Inject { ep } => (node, ep, Vec::new(), None),
                EntryCtx::Arrive {
                    dim,
                    sign,
                    slice,
                    len,
                    pre_mask,
                } => {
                    let arc_start = step_back(model, node, dim, sign, len);
                    let (src, mut hops) = prefix_for(model, pre_mask, arc_start);
                    let dir = TorusDir::new(dim, sign);
                    for _ in 0..len {
                        hops.push(dir);
                    }
                    (src, LocalEndpointId(0), hops, Some(slice))
                }
            };
            let mut hops = hops;
            let (dst_ep, exit_slice) = match exit {
                ExitCtx::Deliver { ep } => (ep, None),
                ExitCtx::Depart { dim, sign, slice } => {
                    hops.push(TorusDir::new(dim, sign));
                    (LocalEndpointId(0), Some(slice))
                }
            };
            let slice = entry_slice.or(exit_slice).unwrap_or(Slice(0));
            (src, src_ep, hops, slice, dst_ep)
        }
    };
    // Validate by re-tracing under the model's dateline rule: the traced
    // route must hold `holds` and request `waits_for` back to back.
    let steps = trace_hops_with(
        cfg,
        src_node,
        Some(src_ep),
        &hops,
        slice,
        Some(dst_ep),
        &mut |n, d| model.crosses(n, d),
    );
    if !steps.windows(2).any(|w| w[0] == holds && w[1] == waits_for) {
        return None;
    }
    let mut dst_node = src_node;
    for h in &hops {
        dst_node = cfg.shape.neighbor(dst_node, *h);
    }
    hops.shrink_to_fit();
    Some(WitnessRoute {
        src: GlobalEndpoint {
            node: cfg.shape.id(src_node),
            ep: src_ep,
        },
        dst: GlobalEndpoint {
            node: cfg.shape.id(dst_node),
            ep: dst_ep,
        },
        hops,
        slice,
        holds,
        waits_for,
    })
}
