//! The machine model the static verifier reasons about.
//!
//! A [`VerifyModel`] is a [`MachineConfig`] plus the knobs that distinguish
//! the machine-as-built from hypothetical (usually broken) variants the
//! verifier can analyze to produce counterexamples — today, whether the
//! dateline-crossing rule is active.

use anton_core::config::MachineConfig;
use anton_core::topology::{Dim, NodeCoord, Sign, TorusDir};

/// A machine configuration as seen by the static verifier.
#[derive(Debug, Clone)]
pub struct VerifyModel {
    /// The configuration under analysis.
    pub cfg: MachineConfig,
    /// Whether dateline crossings promote VCs. Disabling this models a
    /// machine whose dateline registers were never programmed — the classic
    /// unsafe torus configuration — and must make the verifier produce a
    /// concrete dependency cycle.
    pub datelines: bool,
    /// Whether the model covers the *degraded route family*: torus arcs up
    /// to `k − 1` hops (the long way around a ring, as direction-ordered
    /// degraded route tables take past a down link) in either direction, in
    /// addition to healthy minimal arcs. A simple arc still crosses its
    /// ring's dateline at most once regardless of length, so the same
    /// abstract state machine applies; the edge set is strictly larger.
    pub long_arcs: bool,
}

impl VerifyModel {
    /// The model of the machine as configured (datelines active).
    pub fn new(cfg: MachineConfig) -> VerifyModel {
        VerifyModel {
            cfg,
            datelines: true,
            long_arcs: false,
        }
    }

    /// A model with the dateline rule disabled.
    pub fn without_datelines(cfg: MachineConfig) -> VerifyModel {
        VerifyModel {
            cfg,
            datelines: false,
            long_arcs: false,
        }
    }

    /// The degraded-family model: every direction-ordered route the machine
    /// can carry — healthy minimal dimension-order routing *and* every
    /// direction-ordered degraded table (arcs up to `k − 1` hops, either
    /// sign) — under active datelines.
    ///
    /// This over-approximation is **cyclic for `k ≥ 4`**: crossed long arcs
    /// deliver promoted-VC arrivals far from the dateline, whose low-VC
    /// mesh chains couple opposite-direction rings across slices (see
    /// `anton_verify::degraded` for the full story). It exists as an
    /// analysis model and counterexample generator; concrete table sets
    /// are certified explicitly instead.
    pub fn degraded_family(cfg: MachineConfig) -> VerifyModel {
        VerifyModel {
            cfg,
            datelines: true,
            long_arcs: true,
        }
    }

    /// The dateline-crossing rule under this model.
    #[inline]
    pub fn crosses(&self, node: NodeCoord, dir: TorusDir) -> bool {
        self.datelines && self.cfg.shape.hop_crosses_dateline(node, dir)
    }

    /// Dimensions a route can actually travel in (extent > 1).
    pub fn usable_dims(&self) -> Vec<Dim> {
        Dim::ALL
            .iter()
            .copied()
            .filter(|d| self.cfg.shape.k(*d) > 1)
            .collect()
    }

    /// Directions routing can depart in along `dim`.
    ///
    /// For `k == 2` the minimal tie-break always resolves to `+`
    /// ([`anton_core::topology::TorusShape::minimal_offset_choices`]), so
    /// `-` arcs are unreachable and must not enter the dependency graph —
    /// unless the model covers the degraded family, where a table may route
    /// `-` because the `+` link is down.
    pub fn signs_for(&self, dim: Dim) -> &'static [Sign] {
        if self.cfg.shape.k(dim) == 2 && !self.long_arcs {
            &[Sign::Plus]
        } else {
            &[Sign::Plus, Sign::Minus]
        }
    }

    /// Longest torus arc along `dim` the model admits: `⌊k/2⌋` hops
    /// (minimal routing) or `k − 1` (the degraded family's long way
    /// around).
    #[inline]
    pub fn max_arc_len(&self, dim: Dim) -> u8 {
        let k = self.cfg.shape.k(dim);
        if self.long_arcs {
            k.saturating_sub(1)
        } else {
            k / 2
        }
    }

    /// Whether a minimal arc along `dim` can cross a dateline under this
    /// model (some arc of length `<= ⌊k/2⌋` includes the wrap hop).
    pub fn crossing_possible(&self, dim: Dim) -> bool {
        self.datelines && self.cfg.shape.k(dim) > 1
    }
}
