//! The machine model the static verifier reasons about.
//!
//! A [`VerifyModel`] is a [`MachineConfig`] plus the knobs that distinguish
//! the machine-as-built from hypothetical (usually broken) variants the
//! verifier can analyze to produce counterexamples — today, whether the
//! dateline-crossing rule is active.

use anton_core::config::MachineConfig;
use anton_core::topology::{Dim, NodeCoord, Sign, TorusDir};

/// A machine configuration as seen by the static verifier.
#[derive(Debug, Clone)]
pub struct VerifyModel {
    /// The configuration under analysis.
    pub cfg: MachineConfig,
    /// Whether dateline crossings promote VCs. Disabling this models a
    /// machine whose dateline registers were never programmed — the classic
    /// unsafe torus configuration — and must make the verifier produce a
    /// concrete dependency cycle.
    pub datelines: bool,
}

impl VerifyModel {
    /// The model of the machine as configured (datelines active).
    pub fn new(cfg: MachineConfig) -> VerifyModel {
        VerifyModel {
            cfg,
            datelines: true,
        }
    }

    /// A model with the dateline rule disabled.
    pub fn without_datelines(cfg: MachineConfig) -> VerifyModel {
        VerifyModel {
            cfg,
            datelines: false,
        }
    }

    /// The dateline-crossing rule under this model.
    #[inline]
    pub fn crosses(&self, node: NodeCoord, dir: TorusDir) -> bool {
        self.datelines && self.cfg.shape.hop_crosses_dateline(node, dir)
    }

    /// Dimensions a route can actually travel in (extent > 1).
    pub fn usable_dims(&self) -> Vec<Dim> {
        Dim::ALL
            .iter()
            .copied()
            .filter(|d| self.cfg.shape.k(*d) > 1)
            .collect()
    }

    /// Directions minimal routing can depart in along `dim`.
    ///
    /// For `k == 2` the minimal tie-break always resolves to `+`
    /// ([`anton_core::topology::TorusShape::minimal_offset_choices`]), so
    /// `-` arcs are unreachable and must not enter the dependency graph.
    pub fn signs_for(&self, dim: Dim) -> &'static [Sign] {
        if self.cfg.shape.k(dim) == 2 {
            &[Sign::Plus]
        } else {
            &[Sign::Plus, Sign::Minus]
        }
    }

    /// Longest minimal arc along `dim` (`⌊k/2⌋` hops).
    #[inline]
    pub fn max_arc_len(&self, dim: Dim) -> u8 {
        self.cfg.shape.k(dim) / 2
    }

    /// Whether a minimal arc along `dim` can cross a dateline under this
    /// model (some arc of length `<= ⌊k/2⌋` includes the wrap hop).
    pub fn crossing_possible(&self, dim: Dim) -> bool {
        self.datelines && self.cfg.shape.k(dim) > 1
    }
}
