//! Torus instantiation of the symbolic certification engine.
//!
//! The enumerating checker in `anton-analysis` builds the VC dependency
//! graph by tracing every concrete route (all sources × destinations ×
//! dimension orders × slices × tie-breaks) — `O(N²)` traces for `N` nodes.
//! The symbolic engine ([`crate::engine`]) builds the *same* graph in
//! `O(machine size)` from the abstract transition system of
//! [`anton_core::dimorder::DimOrderRouting`]: a packet's VC-promotion state
//! between torus dimensions is fully captured by `(m_vc, routed-dimension
//! mask)`, so a breadth-first walk over a handful of abstract states covers
//! every route the machine can carry. The cross-check tests compare edge
//! sets verbatim against the enumeration on small machines; the 8×8×8
//! default certifies in well under a second.
//!
//! This module is the torus-flavored front door: it translates a
//! [`VerifyModel`] (config + dateline/long-arc knobs) into the
//! topology/routing-function pair the engine consumes and preserves the
//! historical `certify`/`cross_check` API.

use std::collections::HashSet;

use anton_analysis::deadlock::{build_unicast_dep_graph, ChannelVc, RouteEnumeration};
use anton_core::config::MachineConfig;
use anton_core::dimorder::DimOrderRouting;
use anton_core::net::TorusTopology;

use crate::engine::{build_routing_graph, certify_routing};
use crate::graph::SymGraph;
use crate::model::VerifyModel;
use crate::report::DeadlockCertificate;

/// The certificate label of a torus model: VC policy plus dateline setting.
pub(crate) fn model_label(model: &VerifyModel) -> String {
    format!(
        "{} policy, datelines {}",
        model.cfg.vc_policy,
        if model.datelines { "on" } else { "off" }
    )
}

/// The model's routing function: dimension-order routing under the model's
/// dateline and arc-length knobs.
pub(crate) fn model_routing(model: &VerifyModel) -> DimOrderRouting {
    DimOrderRouting::new(model.cfg.clone(), model.datelines, model.long_arcs)
}

/// Symbolically certifies a model deadlock-free, or extracts a minimal
/// concrete `(channel, VC)` cycle with witness routes when it is not.
pub fn certify(model: &VerifyModel) -> DeadlockCertificate {
    let topo = TorusTopology::new(&model.cfg);
    let rf = model_routing(model);
    let (cert, diags) = certify_routing(&topo, &[&rf], model_label(model));
    debug_assert!(
        diags.is_empty(),
        "torus routing broke its envelope: {diags:?}"
    );
    cert
}

/// Result of cross-checking the symbolic construction against the
/// route-enumerating checker.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Verdict of the symbolic graph.
    pub symbolic_acyclic: bool,
    /// Verdict of the enumerated graph.
    pub enumerated_acyclic: bool,
    /// Symbolic edge count (after dedup).
    pub symbolic_edges: usize,
    /// Enumerated edge count.
    pub enumerated_edges: usize,
    /// Every enumerated edge appears in the symbolic graph (must always
    /// hold — the enumeration samples endpoints, the symbolic graph covers
    /// all of them).
    pub enumerated_subset_of_symbolic: bool,
    /// The two edge sets are identical (expected exactly when `en`
    /// enumerates every endpoint).
    pub edges_equal: bool,
}

impl CrossCheck {
    /// Whether the two engines agree on the deadlock verdict.
    pub fn verdicts_agree(&self) -> bool {
        self.symbolic_acyclic == self.enumerated_acyclic
    }
}

/// Cross-checks the symbolic graph against
/// [`anton_analysis::deadlock::build_unicast_dep_graph`] on the same
/// configuration.
pub fn cross_check(cfg: &MachineConfig, en: &RouteEnumeration) -> CrossCheck {
    let model = VerifyModel::new(cfg.clone());
    let topo = TorusTopology::new(cfg);
    let rf = model_routing(&model);
    let mut diags = Vec::new();
    let g: SymGraph<'_> = build_routing_graph(&topo, &[&rf], &mut diags);
    debug_assert!(diags.is_empty(), "{diags:?}");
    let sym: HashSet<(ChannelVc, ChannelVc)> = g.edges().collect();
    let enumerated = build_unicast_dep_graph(cfg, en);
    let enu: HashSet<(ChannelVc, ChannelVc)> = enumerated.edges().collect();
    CrossCheck {
        symbolic_acyclic: g.find_cycle().is_none(),
        enumerated_acyclic: enumerated.find_cycle().is_none(),
        symbolic_edges: sym.len(),
        enumerated_edges: enu.len(),
        enumerated_subset_of_symbolic: enu.is_subset(&sym),
        edges_equal: sym == enu,
    }
}

/// A [`RouteEnumeration`] covering every endpoint — makes the enumerated
/// graph exactly the full unicast dependency graph, so
/// [`cross_check`] must report `edges_equal` (only tractable on tiny tori).
pub fn full_enumeration(cfg: &MachineConfig) -> RouteEnumeration {
    let eps: Vec<u8> = (0..cfg.chip.num_endpoints()).collect();
    RouteEnumeration {
        src_endpoints: eps.clone(),
        dst_endpoints: eps,
    }
}
