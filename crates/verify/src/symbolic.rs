//! Symbolic construction of the channel-dependency graph.
//!
//! The enumerating checker in `anton-analysis` builds the VC dependency
//! graph by tracing every concrete route (all sources × destinations ×
//! dimension orders × slices × tie-breaks) — `O(N²)` traces for `N` nodes.
//! This module builds the *same* graph by a structural argument instead:
//!
//! Every unicast route decomposes into **M-phases** (endpoint injection, a
//! mesh traversal between adapters on one chip, endpoint delivery) and
//! **torus arcs** (a contiguous run of minimal hops in one dimension). The
//! VC-promotion state at any M-phase boundary is fully captured by the pair
//! `(m_vc, routed-dimension mask)`: [`anton_core::vc::VcState::begin_dim`]
//! reads only `m_vc` (Anton policy) or the number of completed dimensions
//! (baseline policies), and the promotion invariant makes `m_vc` a function
//! of the mask alone — `m_i = i` after `i` dimensions whether or not
//! datelines were crossed. So instead of enumerating routes, we:
//!
//! 1. enumerate the (tiny) set of reachable *abstract M-states*,
//! 2. for each abstract state, emit every torus-arc interior a route in that
//!    state could produce, from every start node ([`gen-1`]), and
//! 3. at every node, connect every possible arrival (or injection) through
//!    the on-chip mesh to every possible next departure (or delivery)
//!    ([`gen-2`]).
//!
//! The union over these generalized route fragments is *exactly* the edge
//! set of the full enumeration (the cross-check tests compare edge sets
//! verbatim on small machines), but costs `O(machine size)` rather than
//! `O(N²)` traces — the 8×8×8 default certifies in well under a second.

use std::collections::{HashMap, HashSet};

use anton_analysis::deadlock::{build_unicast_dep_graph, ChannelVc, RouteEnumeration};
use anton_core::chip::{ChanId, LinkGroup, LocalEndpointId, LocalLink, MeshCoord};
use anton_core::config::MachineConfig;
use anton_core::topology::{Dim, NodeCoord, Sign, Slice, TorusDir};
use anton_core::trace::GlobalLink;
use anton_core::vc::VcState;

use crate::graph::SymGraph;
use crate::model::VerifyModel;
use crate::report::{CycleCounterexample, DeadlockCertificate};

/// Bit of one dimension in a routed-dimension mask.
#[inline]
pub(crate) fn dim_bit(d: Dim) -> u8 {
    1 << d.index()
}

/// An abstract M-phase state: the promotion state a packet is in between
/// torus dimensions, plus the set of dimensions already routed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MState {
    /// Representative concrete promotion state (exact: see module docs).
    pub state: VcState,
    /// Bitmask of dimensions already routed.
    pub mask: u8,
}

/// Enumerates every reachable abstract M-state by BFS over `(m_vc, mask)`.
pub(crate) fn reachable_mstates(model: &VerifyModel) -> Vec<MState> {
    let mut seen: HashSet<(u8, u8)> = HashSet::new();
    let mut out = Vec::new();
    let mut queue = vec![MState {
        state: model.cfg.vc_policy.start(),
        mask: 0,
    }];
    while let Some(s) = queue.pop() {
        if !seen.insert((s.state.m_vc(), s.mask)) {
            continue;
        }
        out.push(s);
        for dim in model.usable_dims() {
            if s.mask & dim_bit(dim) != 0 {
                continue;
            }
            let crossings: &[bool] = if model.crossing_possible(dim) {
                &[false, true]
            } else {
                &[false]
            };
            for &crossed in crossings {
                let mut st = s.state;
                st.begin_dim();
                st.torus_hop(crossed);
                st.end_dim();
                queue.push(MState {
                    state: st,
                    mask: s.mask | dim_bit(dim),
                });
            }
        }
    }
    out
}

/// How a packet enters a node's M-phase (context for witness synthesis).
#[derive(Debug, Clone, Copy)]
pub(crate) enum EntryCtx {
    /// Injected by a local endpoint.
    Inject {
        /// The injecting endpoint.
        ep: LocalEndpointId,
    },
    /// Arrived on a torus arc.
    Arrive {
        /// Arc dimension.
        dim: Dim,
        /// Arc direction.
        sign: Sign,
        /// Arc slice.
        slice: Slice,
        /// Shortest arc length realizing the arrival's crossing pattern.
        len: u8,
        /// Dimension mask before the arc.
        pre_mask: u8,
    },
}

/// How a packet leaves a node's M-phase.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ExitCtx {
    /// Delivered to a local endpoint.
    Deliver {
        /// The receiving endpoint.
        ep: LocalEndpointId,
    },
    /// Departs on the next torus dimension.
    Depart {
        /// Next dimension.
        dim: Dim,
        /// Next direction.
        sign: Sign,
        /// Departure slice.
        slice: Slice,
    },
}

/// Provenance of one symbolic dependency edge — enough to synthesize a
/// concrete witness route reproducing it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EdgeCtx {
    /// Interior of a torus arc.
    Ring {
        /// Arc dimension.
        dim: Dim,
        /// Arc direction.
        sign: Sign,
        /// Arc slice.
        slice: Slice,
        /// Node the arc starts at.
        start: NodeCoord,
        /// Dimension mask before the arc.
        pre_mask: u8,
        /// Hop index (0-based) the edge belongs to; an arc of length
        /// `hop + 1` reproduces it.
        hop: u8,
    },
    /// An on-chip M-phase chain.
    MPhase {
        /// The node.
        node: NodeCoord,
        /// How the packet entered.
        entry: EntryCtx,
        /// How the packet left.
        exit: ExitCtx,
    },
}

/// Receives symbolic dependency edges as they are generated.
pub(crate) trait EdgeSink {
    /// Reports one edge with its provenance.
    fn edge(&mut self, from: ChannelVc, to: ChannelVc, ctx: &EdgeCtx);
}

struct GraphSink<'a>(&'a mut SymGraph);

impl EdgeSink for GraphSink<'_> {
    fn edge(&mut self, from: ChannelVc, to: ChannelVc, _ctx: &EdgeCtx) {
        self.0.add_edge(from, to);
    }
}

/// Second-pass sink: captures the provenance of a wanted set of edges
/// (the ones on a dependency cycle).
pub(crate) struct CaptureSink {
    pub(crate) wanted: HashMap<(ChannelVc, ChannelVc), Option<EdgeCtx>>,
}

impl CaptureSink {
    pub(crate) fn for_cycle(cycle: &[ChannelVc]) -> CaptureSink {
        let mut wanted = HashMap::new();
        for i in 0..cycle.len() {
            wanted.insert((cycle[i], cycle[(i + 1) % cycle.len()]), None);
        }
        CaptureSink { wanted }
    }
}

impl EdgeSink for CaptureSink {
    fn edge(&mut self, from: ChannelVc, to: ChannelVc, ctx: &EdgeCtx) {
        if let Some(slot) = self.wanted.get_mut(&(from, to)) {
            if slot.is_none() {
                *slot = Some(*ctx);
            }
        }
    }
}

/// The crossing patterns a minimal arc in `(dim, sign)` can end at
/// coordinate `at.get(dim)` with, each with the shortest realizing arc
/// length: at most `[(false, l0), (true, l1)]`.
pub(crate) fn possible_crossed_at(
    model: &VerifyModel,
    dim: Dim,
    sign: Sign,
    at: NodeCoord,
) -> Vec<(bool, u8)> {
    let k = i32::from(model.cfg.shape.k(dim));
    let dir = TorusDir::new(dim, sign);
    let mut out: Vec<(bool, u8)> = Vec::new();
    for len in 1..=model.max_arc_len(dim) {
        let start = (i32::from(at.get(dim)) - sign.delta() * i32::from(len)).rem_euclid(k) as u8;
        let mut cur = at.with(dim, start);
        let mut crossed = false;
        for _ in 0..len {
            crossed |= model.crosses(cur, dir);
            cur = model.cfg.shape.neighbor(cur, dir);
        }
        debug_assert_eq!(cur.get(dim), at.get(dim));
        if !out.iter().any(|&(c, _)| c == crossed) {
            out.push((crossed, len));
            if out.len() == 2 {
                break;
            }
        }
    }
    out
}

/// Emits every symbolic dependency edge of the model into `sink`.
pub(crate) fn generate(model: &VerifyModel, mstates: &[MState], sink: &mut dyn EdgeSink) {
    gen_ring_edges(model, mstates, sink);
    gen_mphase_edges(model, mstates, sink);
}

/// Gen-1: edges interior to a torus arc — departure adapter → torus channel
/// → arrival adapter, plus through-node chains at intermediate nodes.
/// Walking the maximal-length arc from every start node covers every
/// shorter arc as a prefix (the crossing pattern depends on position, not
/// arc length).
fn gen_ring_edges(model: &VerifyModel, mstates: &[MState], sink: &mut dyn EdgeSink) {
    let cfg = &model.cfg;
    let chip = &cfg.chip;
    for pre in mstates {
        for dim in model.usable_dims() {
            if pre.mask & dim_bit(dim) != 0 {
                continue;
            }
            for &sign in model.signs_for(dim) {
                let dir = TorusDir::new(dim, sign);
                for slice in Slice::ALL {
                    let depart = ChanId { dir, slice };
                    let arrive = ChanId {
                        dir: dir.opposite(),
                        slice,
                    };
                    for start in cfg.shape.nodes() {
                        let mut st = pre.state;
                        st.begin_dim();
                        let mut node = start;
                        for h in 0..model.max_arc_len(dim) {
                            let ctx = EdgeCtx::Ring {
                                dim,
                                sign,
                                slice,
                                start,
                                pre_mask: pre.mask,
                                hop: h,
                            };
                            let nid = cfg.shape.id(node);
                            let t_dep = st.vc_for(LinkGroup::T);
                            let rtc = (
                                GlobalLink::Local {
                                    node: nid,
                                    link: LocalLink::RouterToChan(depart),
                                },
                                t_dep,
                            );
                            if h > 0 {
                                // Through-route at an intermediate node: the
                                // arrival adapter feeds the departure adapter
                                // (via the skip channel for X, directly for
                                // Y/Z whose adapters share a router).
                                let ctr_prev = (
                                    GlobalLink::Local {
                                        node: nid,
                                        link: LocalLink::ChanToRouter(arrive),
                                    },
                                    t_dep,
                                );
                                if dim == Dim::X {
                                    let skip = (
                                        GlobalLink::Local {
                                            node: nid,
                                            link: LocalLink::Skip {
                                                from: chip.chan_router(arrive),
                                            },
                                        },
                                        t_dep,
                                    );
                                    sink.edge(ctr_prev, skip, &ctx);
                                    sink.edge(skip, rtc, &ctx);
                                } else {
                                    sink.edge(ctr_prev, rtc, &ctx);
                                }
                            }
                            let tvc = st.torus_hop(model.crosses(node, dir));
                            let torus = (
                                GlobalLink::Torus {
                                    from: nid,
                                    dir,
                                    slice,
                                },
                                tvc,
                            );
                            sink.edge(rtc, torus, &ctx);
                            node = cfg.shape.neighbor(node, dir);
                            let ctr = (
                                GlobalLink::Local {
                                    node: cfg.shape.id(node),
                                    link: LocalLink::ChanToRouter(arrive),
                                },
                                tvc,
                            );
                            sink.edge(torus, ctr, &ctx);
                        }
                    }
                }
            }
        }
    }
}

/// One way a packet can enter a node's M-phase.
struct MEntry {
    link: ChannelVc,
    router: MeshCoord,
    state: VcState,
    mask: u8,
    slice: Option<Slice>,
    ctx: EntryCtx,
}

/// Gen-2: per-node M-phase edges — every entry (injection or torus
/// arrival), through the deterministic direction-order mesh chain, to every
/// exit (delivery or next-dimension departure).
fn gen_mphase_edges(model: &VerifyModel, mstates: &[MState], sink: &mut dyn EdgeSink) {
    let cfg = &model.cfg;
    let chip = &cfg.chip;
    for node in cfg.shape.nodes() {
        let nid = cfg.shape.id(node);
        let mut entries: Vec<MEntry> = Vec::new();
        // Injection entries: a fresh packet at any endpoint.
        let start = cfg.vc_policy.start();
        for ep in chip.endpoints() {
            entries.push(MEntry {
                link: (
                    GlobalLink::Local {
                        node: nid,
                        link: LocalLink::EpToRouter(ep),
                    },
                    start.vc_for(LinkGroup::M),
                ),
                router: chip.endpoint_router(ep),
                state: start,
                mask: 0,
                slice: None,
                ctx: EntryCtx::Inject { ep },
            });
        }
        // Arrival entries: the end of a torus arc in any abstract state.
        for pre in mstates {
            for dim in model.usable_dims() {
                if pre.mask & dim_bit(dim) != 0 {
                    continue;
                }
                for &sign in model.signs_for(dim) {
                    let dir = TorusDir::new(dim, sign);
                    for (crossed, len) in possible_crossed_at(model, dim, sign, node) {
                        let mut st = pre.state;
                        st.begin_dim();
                        let tvc = st.torus_hop(crossed);
                        st.end_dim();
                        for slice in Slice::ALL {
                            let arrive = ChanId {
                                dir: dir.opposite(),
                                slice,
                            };
                            entries.push(MEntry {
                                link: (
                                    GlobalLink::Local {
                                        node: nid,
                                        link: LocalLink::ChanToRouter(arrive),
                                    },
                                    tvc,
                                ),
                                router: chip.chan_router(arrive),
                                state: st,
                                mask: pre.mask | dim_bit(dim),
                                slice: Some(slice),
                                ctx: EntryCtx::Arrive {
                                    dim,
                                    sign,
                                    slice,
                                    len,
                                    pre_mask: pre.mask,
                                },
                            });
                        }
                    }
                }
            }
        }
        for entry in &entries {
            let m = entry.state.vc_for(LinkGroup::M);
            // Delivery exits.
            for ep in chip.endpoints() {
                let exit = (
                    GlobalLink::Local {
                        node: nid,
                        link: LocalLink::RouterToEp(ep),
                    },
                    m,
                );
                let ctx = EdgeCtx::MPhase {
                    node,
                    entry: entry.ctx,
                    exit: ExitCtx::Deliver { ep },
                };
                emit_chain(cfg, node, entry, chip.endpoint_router(ep), exit, &ctx, sink);
            }
            // Next-dimension departure exits. The departure slice must match
            // the arrival slice (a route uses one slice end to end);
            // injections pair with either slice.
            for dim2 in model.usable_dims() {
                if entry.mask & dim_bit(dim2) != 0 {
                    continue;
                }
                for &sign2 in model.signs_for(dim2) {
                    let dir2 = TorusDir::new(dim2, sign2);
                    for slice2 in Slice::ALL {
                        if entry.slice.is_some_and(|s| s != slice2) {
                            continue;
                        }
                        let depart = ChanId {
                            dir: dir2,
                            slice: slice2,
                        };
                        let mut st2 = entry.state;
                        st2.begin_dim();
                        let exit = (
                            GlobalLink::Local {
                                node: nid,
                                link: LocalLink::RouterToChan(depart),
                            },
                            st2.vc_for(LinkGroup::T),
                        );
                        let ctx = EdgeCtx::MPhase {
                            node,
                            entry: entry.ctx,
                            exit: ExitCtx::Depart {
                                dim: dim2,
                                sign: sign2,
                                slice: slice2,
                            },
                        };
                        emit_chain(cfg, node, entry, chip.chan_router(depart), exit, &ctx, sink);
                    }
                }
            }
        }
    }
}

/// Emits the edge chain `entry.link → mesh hops → exit_link`, following the
/// configured direction-order route between the two routers. When entry and
/// exit share a router, the chain is the single direct edge.
fn emit_chain(
    cfg: &MachineConfig,
    node: NodeCoord,
    entry: &MEntry,
    to_router: MeshCoord,
    exit_link: ChannelVc,
    ctx: &EdgeCtx,
    sink: &mut dyn EdgeSink,
) {
    let nid = cfg.shape.id(node);
    let m = entry.state.vc_for(LinkGroup::M);
    let mut prev = entry.link;
    let mut cur = entry.router;
    while let Some(d) = cfg.dir_order.next_dir(cur, to_router) {
        let mesh = (
            GlobalLink::Local {
                node: nid,
                link: LocalLink::Mesh { from: cur, dir: d },
            },
            m,
        );
        sink.edge(prev, mesh, ctx);
        prev = mesh;
        cur = cur.step(d).expect("direction-order route stays on chip");
    }
    sink.edge(prev, exit_link, ctx);
}

/// Builds the symbolic dependency graph of a model.
pub(crate) fn build_sym_graph(model: &VerifyModel) -> SymGraph {
    let policy = model.cfg.vc_policy;
    let vcs = policy
        .num_vcs(LinkGroup::M)
        .max(policy.num_vcs(LinkGroup::T));
    let mut g = SymGraph::new(&model.cfg, usize::from(vcs));
    generate_into(model, &mut g);
    g
}

/// Emits the model's full symbolic edge set into an existing graph (used by
/// the degraded-table certifier to overlay explicit table edges on the
/// family graph).
pub(crate) fn generate_into(model: &VerifyModel, g: &mut SymGraph) {
    let mstates = reachable_mstates(model);
    generate(model, &mstates, &mut GraphSink(g));
}

/// Symbolically certifies a model deadlock-free, or extracts a minimal
/// concrete `(channel, VC)` cycle with witness routes when it is not.
pub fn certify(model: &VerifyModel) -> DeadlockCertificate {
    let g = build_sym_graph(model);
    let nodes = g.num_live_nodes();
    let edges = g.num_edges();
    let base = DeadlockCertificate {
        policy: model.cfg.vc_policy,
        datelines: model.datelines,
        nodes,
        edges,
        acyclic: true,
        counterexample: None,
    };
    let Some(cycle) = g.find_cycle() else {
        return base;
    };
    let cycle = g.minimize_cycle(cycle);
    let cvs: Vec<ChannelVc> = cycle.iter().map(|&i| g.decode(i)).collect();
    // Second generation pass: recover the provenance of the cycle's edges,
    // then synthesize concrete witness routes from it.
    let mut cap = CaptureSink::for_cycle(&cvs);
    let mstates = reachable_mstates(model);
    generate(model, &mstates, &mut cap);
    let witnesses = crate::witness::synthesize(model, &cvs, &cap, true);
    DeadlockCertificate {
        acyclic: false,
        counterexample: Some(CycleCounterexample {
            cycle: cvs,
            witnesses,
        }),
        ..base
    }
}

/// Result of cross-checking the symbolic construction against the
/// route-enumerating checker.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Verdict of the symbolic graph.
    pub symbolic_acyclic: bool,
    /// Verdict of the enumerated graph.
    pub enumerated_acyclic: bool,
    /// Symbolic edge count (after dedup).
    pub symbolic_edges: usize,
    /// Enumerated edge count.
    pub enumerated_edges: usize,
    /// Every enumerated edge appears in the symbolic graph (must always
    /// hold — the enumeration samples endpoints, the symbolic graph covers
    /// all of them).
    pub enumerated_subset_of_symbolic: bool,
    /// The two edge sets are identical (expected exactly when `en`
    /// enumerates every endpoint).
    pub edges_equal: bool,
}

impl CrossCheck {
    /// Whether the two engines agree on the deadlock verdict.
    pub fn verdicts_agree(&self) -> bool {
        self.symbolic_acyclic == self.enumerated_acyclic
    }
}

/// Cross-checks the symbolic graph against
/// [`anton_analysis::deadlock::build_unicast_dep_graph`] on the same
/// configuration.
pub fn cross_check(cfg: &MachineConfig, en: &RouteEnumeration) -> CrossCheck {
    let model = VerifyModel::new(cfg.clone());
    let g = build_sym_graph(&model);
    let sym: HashSet<(ChannelVc, ChannelVc)> = g.edges().collect();
    let enumerated = build_unicast_dep_graph(cfg, en);
    let enu: HashSet<(ChannelVc, ChannelVc)> = enumerated.edges().collect();
    CrossCheck {
        symbolic_acyclic: g.find_cycle().is_none(),
        enumerated_acyclic: enumerated.find_cycle().is_none(),
        symbolic_edges: sym.len(),
        enumerated_edges: enu.len(),
        enumerated_subset_of_symbolic: enu.is_subset(&sym),
        edges_equal: sym == enu,
    }
}

/// A [`RouteEnumeration`] covering every endpoint — makes the enumerated
/// graph exactly the full unicast dependency graph, so
/// [`cross_check`] must report `edges_equal` (only tractable on tiny tori).
pub fn full_enumeration(cfg: &MachineConfig) -> RouteEnumeration {
    let eps: Vec<u8> = (0..cfg.chip.num_endpoints()).collect();
    RouteEnumeration {
        src_endpoints: eps.clone(),
        dst_endpoints: eps,
    }
}
