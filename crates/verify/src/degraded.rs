//! Degraded-topology verification: building and certifying fault-aware
//! route tables so a machine with `Down` links *reroutes* instead of
//! deadlocking.
//!
//! The load-bearing entry point is the **explicit table certificate**
//! ([`certify_tables`]): every `(src, dst)` path of a concrete table set
//! is walked through the reference tracer, the resulting
//! channel-dependency edges are overlaid on the *healthy* minimal-routing
//! graph (randomized minimal traffic that can be in flight alongside the
//! rerouted traffic), and the union is checked for cycles. The simulator
//! certifies the union of every table it will ever install for a run —
//! packets pinned to different degradation epochs coexist, so their
//! dependency edges must be acyclic *together*, not just per epoch.
//!
//! Why per-degradation certification, rather than one certificate for the
//! whole direction-ordered family? Because the family is genuinely cyclic
//! on tori with `k ≥ 4`. A long rerouted arc that crosses its dateline
//! keeps traveling past it, so it arrives at nodes far from the dateline
//! still on the *promoted* T-VC with a low M-level — arrivals healthy
//! minimal routing can never produce there. Those arrivals open
//! mesh-level dependency chains at low VCs that couple opposite-direction
//! rings on *different slices* through the shared on-chip mesh, closing a
//! cycle ([`certify_family`] extracts a concrete 16-edge counterexample
//! on a 4×4×4 torus; the `long_arc_family_is_cyclic` test pins it). Any
//! one degradation only bends a few rings, so concrete table sets
//! generally stay acyclic — but that must be *proved per table set*,
//! which is exactly what this module does and what the simulator's
//! install gate enforces. This mirrors why full-blown fault-tolerant
//! routing needs per-route-set proofs rather than a single static
//! argument.
//!
//! [`verify_degraded`] ties generation ([`build_degraded_tables`]) and
//! certification together and reports failures through the
//! `AV020`/`AV021` lint codes: a down set that partitions the network (no
//! table exists) and a degradation whose tables cannot be certified
//! deadlock-free (never installed).

use anton_core::config::MachineConfig;
use anton_core::net::RoutingFunction;
use anton_core::net::TorusTopology;
use anton_core::route_table::{build_route_table, DownLinkSet, RouteTable, TableMethod};
use anton_core::table_routing::TableRouting;
use anton_core::topology::Slice;

use crate::engine::certify_routing;
use crate::model::VerifyModel;
use crate::report::{DeadlockCertificate, Diagnostic, Severity};
use crate::symbolic::{model_label, model_routing};

/// Certifies the direction-ordered degraded route *family* — the
/// down-set-independent over-approximation admitting arcs up to `k − 1`
/// hops in either direction of every ring at once.
///
/// This is an **analysis tool, not an install gate**: the family is
/// provably cyclic for `k ≥ 4` (see the module docs — long crossed arcs
/// couple opposite-direction rings across slices through the shared
/// on-chip mesh), which is precisely why the simulator certifies each
/// concrete table set explicitly with [`certify_tables`] instead of
/// relying on one static certificate.
pub fn certify_family(cfg: &MachineConfig) -> DeadlockCertificate {
    crate::symbolic::certify(&VerifyModel::degraded_family(cfg.clone()))
}

/// Explicitly certifies a concrete set of route tables: every
/// `(src, dst)` path is walked through the reference tracer, the
/// resulting channel-dependency edges are overlaid on the *healthy*
/// minimal-routing graph (the randomized minimal traffic that can be in
/// flight at the same time), and the union is checked for cycles.
///
/// Pass **every table that can have packets in flight simultaneously** —
/// for a simulation run with several degradation epochs, the union of all
/// epochs' tables — since cross-table couplings through the shared mesh
/// are exactly the failure mode a per-epoch check would miss.
pub fn certify_tables(cfg: &MachineConfig, tables: &[RouteTable]) -> DeadlockCertificate {
    let model = VerifyModel::new(cfg.clone());
    let topo = TorusTopology::new(cfg);
    let healthy = model_routing(&model);
    let table_rfs: Vec<TableRouting> = tables
        .iter()
        .map(|t| TableRouting::new(cfg.clone(), t.clone()))
        .collect();
    let mut rfs: Vec<&dyn RoutingFunction> = vec![&healthy];
    rfs.extend(table_rfs.iter().map(|t| t as &dyn RoutingFunction));
    let (cert, diags) = certify_routing(&topo, &rfs, model_label(&model));
    debug_assert!(
        diags.is_empty(),
        "table routing broke its envelope: {diags:?}"
    );
    cert
}

/// Outcome of building and certifying degraded route tables for one
/// down-link set.
#[derive(Debug)]
pub struct DegradedVerdict {
    /// The generated tables, one per slice in slice order (fewer when
    /// generation failed for a slice).
    pub tables: Vec<RouteTable>,
    /// The certificate over the installed system, when generation
    /// succeeded far enough to certify.
    pub certificate: Option<DeadlockCertificate>,
    /// `AV020`/`AV021` diagnostics raised along the way.
    pub diagnostics: Vec<Diagnostic>,
}

impl DegradedVerdict {
    /// Whether the degradation is certified for install: a table exists
    /// for every slice, no error diagnostics, and the certificate is
    /// acyclic. The simulator refuses to install anything less.
    pub fn certified(&self) -> bool {
        self.tables.len() == Slice::ALL.len()
            && self
                .diagnostics
                .iter()
                .all(|d| d.severity != Severity::Error)
            && self.certificate.as_ref().is_some_and(|c| c.acyclic)
    }
}

/// Builds the per-slice degraded route tables for one down-link set and
/// structurally validates them, reporting failures as `AV020`/`AV021`
/// diagnostics. Returns fewer than [`Slice::ALL`] tables when a slice
/// fails. This is the generation half of [`verify_degraded`]; the
/// simulator calls it per degradation epoch, then certifies the union of
/// all epochs' tables with [`certify_tables`].
pub fn build_degraded_tables(
    cfg: &MachineConfig,
    downs: &DownLinkSet,
) -> (Vec<RouteTable>, Vec<Diagnostic>) {
    let mut diagnostics = Vec::new();
    let mut tables = Vec::new();
    for slice in Slice::ALL {
        match build_route_table(&cfg.shape, slice, downs) {
            Ok(t) => tables.push(t),
            Err(e) => diagnostics.push(table_error_diag(slice, downs, &e)),
        }
    }
    // BFS tables must satisfy the VC-state structural rules before the
    // symbolic walk is even defined on their paths.
    tables.retain(|t| {
        if t.method() != TableMethod::Bfs {
            return true;
        }
        match t.validate() {
            Ok(()) => true,
            Err(e) => {
                diagnostics.push(
                    Diagnostic::error(
                        "AV021",
                        format!(
                            "degraded {} table for {} is not VC-compatible: {e}",
                            t.method(),
                            t.slice()
                        ),
                    )
                    .with("slice", t.slice())
                    .with("down_links", downs.len()),
                );
                false
            }
        }
    });
    (tables, diagnostics)
}

/// Builds and certifies the degraded route tables for a down-link set:
/// generation plus the explicit per-path certification of
/// [`certify_tables`]. This is both the offline check behind
/// `verify_config --down-links` and the simulator's install gate for a
/// single-epoch fault schedule.
pub fn verify_degraded(cfg: &MachineConfig, downs: &DownLinkSet) -> DegradedVerdict {
    let (tables, mut diagnostics) = build_degraded_tables(cfg, downs);
    if tables.len() < Slice::ALL.len() {
        return DegradedVerdict {
            tables,
            certificate: None,
            diagnostics,
        };
    }
    let certificate = certify_tables(cfg, &tables);
    if !certificate.acyclic {
        let mut d = Diagnostic::error(
            "AV021",
            format!("degraded route tables are uncertifiable — {certificate}"),
        )
        .with("down_links", downs.len());
        if let Some(ce) = &certificate.counterexample {
            d = d.with("cycle_length", ce.cycle.len());
            if let Some(w) = ce.witnesses.first() {
                d = d.with("witness", w);
            }
        }
        diagnostics.push(d);
    }
    DegradedVerdict {
        tables,
        certificate: Some(certificate),
        diagnostics,
    }
}

fn table_error_diag(
    slice: Slice,
    downs: &DownLinkSet,
    err: &anton_core::route_table::RouteTableError,
) -> Diagnostic {
    use anton_core::route_table::RouteTableError;
    match err {
        RouteTableError::Unreachable { src, dst } => Diagnostic::error(
            "AV020",
            format!("down links partition {slice}: no live path from {src} to {dst}"),
        )
        .with("slice", slice)
        .with("src", src)
        .with("dst", dst)
        .with("down_links", downs.len()),
        e @ RouteTableError::NotVcCompatible { .. } => Diagnostic::error(
            "AV021",
            format!("degraded table for {slice} is not VC-compatible: {e}"),
        )
        .with("slice", slice)
        .with("down_links", downs.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::chip::ChanId;
    use anton_core::topology::{Dim, NodeCoord, NodeId, Sign, TorusDir, TorusShape};

    fn chan(dim: Dim, sign: Sign, slice: Slice) -> ChanId {
        ChanId {
            dir: TorusDir::new(dim, sign),
            slice,
        }
    }

    #[test]
    fn long_arc_family_is_cyclic() {
        // The negative result that shapes this module's API: the
        // down-set-independent long-arc family is NOT deadlock-free once
        // the torus is large enough for a crossed arc to continue ≥ 2
        // hops past its dateline (k ≥ 4). A promoted-VC arrival far from
        // the dateline opens low-VC mesh chains that couple
        // opposite-direction rings across slices, closing a cycle. Hence
        // every concrete table set must be certified explicitly.
        let cert = certify_family(&MachineConfig::new(TorusShape::cube(4)));
        assert!(!cert.acyclic, "family unexpectedly certified: {cert}");
        let ce = cert.counterexample.expect("cycle extracted");
        assert!(!ce.witnesses.is_empty(), "cycle has concrete witnesses");
        // On k = 3 every crossed arc ends at most one hop past the
        // dateline — the positional property healthy routing relies on —
        // so the family is still sound there.
        let small = certify_family(&MachineConfig::new(TorusShape::cube(3)));
        assert!(small.acyclic, "{small}");
    }

    #[test]
    fn explicit_tables_are_subset_of_family_graph() {
        // Cross-validates the explicit table walker against the symbolic
        // transition system: every direction-ordered degraded table's
        // dependency edges must already be present in the
        // (over-approximating) long-arc family graph.
        let cfg = MachineConfig::new(TorusShape::cube(3));
        let model = VerifyModel::degraded_family(cfg.clone());
        let topo = TorusTopology::new(&cfg);
        let family_rf = model_routing(&model);
        let mut diags = Vec::new();
        let family = crate::engine::build_routing_graph(&topo, &[&family_rf], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        let family_edges: std::collections::HashSet<_> = family.edges().collect();
        // Healthy plus a sample of single-link downs.
        let shape = cfg.shape;
        let mut down_sets = vec![DownLinkSet::empty(shape)];
        for (node, dim, sign) in [
            (NodeCoord::new(0, 0, 0), Dim::X, Sign::Plus),
            (NodeCoord::new(1, 2, 0), Dim::Y, Sign::Minus),
            (NodeCoord::new(2, 1, 1), Dim::Z, Sign::Plus),
        ] {
            for slice in Slice::ALL {
                down_sets.push(DownLinkSet::from_links(
                    shape,
                    [(shape.id(node), chan(dim, sign, slice))],
                ));
            }
        }
        for downs in &down_sets {
            let mut table_rfs = Vec::new();
            for slice in Slice::ALL {
                let table = build_route_table(&shape, slice, downs).unwrap();
                assert_eq!(table.method(), TableMethod::DirectionOrdered);
                table_rfs.push(TableRouting::new(cfg.clone(), table));
            }
            let rfs: Vec<&dyn RoutingFunction> = table_rfs
                .iter()
                .map(|t| t as &dyn RoutingFunction)
                .collect();
            let mut diags = Vec::new();
            let explicit = crate::engine::build_routing_graph(&topo, &rfs, &mut diags);
            assert!(diags.is_empty(), "{diags:?}");
            for (from, to) in explicit.edges() {
                assert!(
                    family_edges.contains(&(from, to)),
                    "table edge {}@{} -> {}@{} missing from family graph ({} downs)",
                    from.0,
                    from.1,
                    to.0,
                    to.1,
                    downs.len()
                );
            }
        }
    }

    #[test]
    fn single_down_link_verifies_end_to_end() {
        // Every direction (both signs of all three dims, both slices) of
        // a single down link at an off-origin node must build and certify
        // — the load-bearing claim behind "any single external link Down
        // survives". The integration suite sweeps positions; this unit
        // test sweeps channels.
        let cfg = MachineConfig::new(TorusShape::cube(3));
        let shape = cfg.shape;
        let node = shape.id(NodeCoord::new(1, 2, 0));
        for dir in TorusDir::ALL {
            for slice in Slice::ALL {
                let downs = DownLinkSet::from_links(shape, [(node, ChanId { dir, slice })]);
                let verdict = verify_degraded(&cfg, &downs);
                assert!(
                    verdict.certified(),
                    "down {dir:?} {slice}: {:?}",
                    verdict.diagnostics
                );
                assert_eq!(verdict.tables.len(), 2);
            }
        }
    }

    #[test]
    fn single_down_link_certifies_past_family_boundary() {
        // cube(4) is where the long-arc family goes cyclic — but a
        // concrete single-link degradation only bends one ring on one
        // slice, and its explicit certificate (healthy overlay + long-way
        // table) stays acyclic. Down Z- at z=3 forces the 3-hop
        // long-way +Z arc through the dateline, the exact arc shape that
        // breaks the family.
        let cfg = MachineConfig::new(TorusShape::cube(4));
        let shape = cfg.shape;
        let downs = DownLinkSet::from_links(
            shape,
            [(
                shape.id(NodeCoord::new(0, 2, 3)),
                chan(Dim::Z, Sign::Minus, Slice(0)),
            )],
        );
        let verdict = verify_degraded(&cfg, &downs);
        assert!(verdict.certified(), "{:?}", verdict.diagnostics);
    }

    #[test]
    fn cross_slice_epoch_union_is_rejected() {
        // The union hazard the per-epoch gate would miss: one epoch takes
        // down Z- (slice 0) at z=3 of ring (x=0, y=2), another takes down
        // Z+ (slice 1) at z=0 of the same ring. Each epoch alone
        // certifies; their coexisting tables route the ring's long way in
        // *opposite* directions on the two slices, and the promoted-VC
        // arrivals couple through the shared mesh into a real dependency
        // cycle. The certifier must reject the union.
        let cfg = MachineConfig::new(TorusShape::cube(4));
        let shape = cfg.shape;
        let a = DownLinkSet::from_links(
            shape,
            [(
                shape.id(NodeCoord::new(0, 2, 3)),
                chan(Dim::Z, Sign::Minus, Slice(0)),
            )],
        );
        let b = DownLinkSet::from_links(
            shape,
            [(
                shape.id(NodeCoord::new(0, 2, 0)),
                chan(Dim::Z, Sign::Plus, Slice(1)),
            )],
        );
        let mut all = Vec::new();
        for downs in [&a, &b] {
            assert!(verify_degraded(&cfg, downs).certified());
            let (tables, diags) = build_degraded_tables(&cfg, downs);
            assert!(diags.is_empty(), "{diags:?}");
            all.extend(tables);
        }
        let cert = certify_tables(&cfg, &all);
        assert!(!cert.acyclic, "union unexpectedly certified: {cert}");
        let ce = cert.counterexample.expect("cycle extracted");
        assert!(!ce.witnesses.is_empty());
    }

    #[test]
    fn multi_epoch_table_union_certifies() {
        // Packets pinned to different degradation epochs coexist, so the
        // simulator certifies the union of all epochs' tables at once.
        // Two different single-link degradations (different rings,
        // different slices) plus healthy traffic must be jointly acyclic.
        let cfg = MachineConfig::new(TorusShape::cube(3));
        let shape = cfg.shape;
        let epoch_downs = [
            DownLinkSet::from_links(
                shape,
                [(
                    shape.id(NodeCoord::new(1, 1, 0)),
                    chan(Dim::X, Sign::Plus, Slice(0)),
                )],
            ),
            DownLinkSet::from_links(
                shape,
                [(
                    shape.id(NodeCoord::new(0, 2, 1)),
                    chan(Dim::Z, Sign::Minus, Slice(1)),
                )],
            ),
        ];
        let mut all = Vec::new();
        for downs in &epoch_downs {
            let (tables, diags) = build_degraded_tables(&cfg, downs);
            assert!(diags.is_empty(), "{diags:?}");
            all.extend(tables);
        }
        let cert = certify_tables(&cfg, &all);
        assert!(cert.acyclic, "{cert}");
    }

    #[test]
    fn severed_ring_bfs_tables_certify_explicitly() {
        let cfg = MachineConfig::new(TorusShape::new(4, 4, 1));
        let shape = cfg.shape;
        // Same double-down scenario as route_table's BFS test: the y=0
        // x-ring is blocked in both rotations for the pair (0,0)->(2,0).
        let downs = DownLinkSet::from_links(
            shape,
            [
                (
                    shape.id(NodeCoord::new(1, 0, 0)),
                    chan(Dim::X, Sign::Plus, Slice(0)),
                ),
                (
                    shape.id(NodeCoord::new(3, 0, 0)),
                    chan(Dim::X, Sign::Minus, Slice(0)),
                ),
            ],
        );
        let verdict = verify_degraded(&cfg, &downs);
        assert!(verdict.certified(), "{:?}", verdict.diagnostics);
        assert!(verdict
            .tables
            .iter()
            .any(|t| t.method() == TableMethod::Bfs));
    }

    #[test]
    fn partitioned_network_reports_av020() {
        let cfg = MachineConfig::new(TorusShape::new(2, 1, 1));
        let n0 = NodeId(0);
        let downs = DownLinkSet::from_links(
            cfg.shape,
            [
                (n0, chan(Dim::X, Sign::Plus, Slice(0))),
                (n0, chan(Dim::X, Sign::Minus, Slice(0))),
            ],
        );
        let verdict = verify_degraded(&cfg, &downs);
        assert!(!verdict.certified());
        assert!(verdict.diagnostics.iter().any(|d| d.code == "AV020"));
    }

    #[test]
    fn healthy_tables_verify() {
        let cfg = MachineConfig::new(TorusShape::cube(3));
        let verdict = verify_degraded(&cfg, &DownLinkSet::empty(cfg.shape));
        assert!(verdict.certified());
        assert!(verdict
            .tables
            .iter()
            .all(|t| t.method() == TableMethod::DirectionOrdered));
    }
}
