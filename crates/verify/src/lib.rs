//! Static verification for the Anton 2 network model.
//!
//! This crate certifies a machine configuration *before* simulation:
//!
//! - **Topology-agnostic certification engine** ([`engine`]): consumes any
//!   [`anton_core::net::Topology`] + [`anton_core::net::RoutingFunction`]
//!   pair, derives the `(channel, VC)` dependency graph from the routing
//!   function's abstract transition system, and proves it acyclic — or
//!   extracts a minimal concrete cycle with witness routes when it is not.
//!   Routing functions that step outside their declared envelope raise
//!   `AV022`/`AV023`.
//! - **Symbolic torus certification** ([`certify`]): the engine
//!   instantiated with dimension-order torus routing — all dimension
//!   orders, dateline-crossing patterns, and slices at once, without
//!   enumerating routes. A cross-check mode ([`cross_check`]) compares the
//!   symbolic graph edge-for-edge against the route-enumerating checker in
//!   `anton-analysis` on small machines.
//! - **Full-mesh certification** ([`verify_mesh`]): the first non-torus
//!   instance — proves single-hop mesh routing deadlock-free with zero
//!   VCs, and extracts concrete cycle witnesses from the deliberately
//!   cyclic ring-forwarding rule.
//! - **Degraded-topology certification** ([`degraded`]): builds fault-aware
//!   route tables over the live link graph and certifies each concrete
//!   table set explicitly — every path walked through the reference
//!   tracer, overlaid on the healthy minimal-routing graph, the union
//!   checked for cycles. (A single down-set-independent certificate is
//!   provably impossible: the long-arc route family is cyclic for
//!   `k ≥ 4`.) The simulator refuses to install anything uncertified
//!   (`AV020`/`AV021`).
//! - **Config lint engine** ([`lint_config`], [`lint_params`],
//!   [`lint_weights`]): ~18 typed checks with stable `AV0xx` codes covering
//!   VC budgets, dateline placement, direction-order tables, buffer and
//!   latency parameters, fault schedules, arbiter weights, and tracing
//!   configuration. See `crate::lint` for the code table.
//!
//! The simulator runs [`preflight`] during construction (fail-fast by
//! default), the experiment harness verifies configurations before
//! launching batches, and the `verify_config` binary emits a standalone
//! JSON verification report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod degraded;
pub mod engine;
pub mod graph;
pub mod lint;
pub mod mesh;
pub mod model;
pub mod report;
pub mod symbolic;

pub use anton_analysis::deadlock::{ChannelVc, RouteEnumeration};
pub use anton_core::net::{ConcreteRoute, RoutePath, RoutingFunction, Topology};
pub use degraded::{
    build_degraded_tables, certify_family, certify_tables, verify_degraded, DegradedVerdict,
};
pub use engine::{build_routing_graph, certify_routing};
pub use lint::{lint_config, lint_model, lint_params, lint_weights, ParamsView};
pub use mesh::verify_mesh;
pub use model::VerifyModel;
pub use report::{
    CycleCounterexample, DeadlockCertificate, Diagnostic, Severity, VerifyReport, WitnessRoute,
};
pub use symbolic::{certify, cross_check, full_enumeration, CrossCheck};

use anton_core::config::MachineConfig;

/// Verifies a model: configuration lints plus symbolic deadlock
/// certification. A dependency cycle adds an `AV002` error carrying the
/// counterexample summary; the full counterexample rides on the report's
/// certificate.
pub fn verify_model(model: &VerifyModel) -> VerifyReport {
    let mut diagnostics = lint_model(model);
    let certificate = certify(model);
    if !certificate.acyclic {
        let mut d = Diagnostic::error(
            "AV002",
            format!("channel dependency graph has a cycle — {certificate}"),
        );
        if let Some(ce) = &certificate.counterexample {
            d = d.with("cycle_length", ce.cycle.len());
            for (i, (link, vc)) in ce.cycle.iter().take(6).enumerate() {
                d = d.with(format!("cycle[{i}]"), format!("{link}@{vc}"));
            }
            if let Some(w) = ce.witnesses.first() {
                d = d.with("witness", w);
            }
        }
        diagnostics.push(d);
    }
    VerifyReport {
        diagnostics,
        certificate: Some(certificate),
    }
}

/// Verifies a machine configuration as built (datelines active).
pub fn verify_config(cfg: &MachineConfig) -> VerifyReport {
    verify_model(&VerifyModel::new(cfg.clone()))
}

/// The pre-flight check the simulator runs before construction: full
/// configuration verification plus parameter lints.
pub fn preflight(cfg: &MachineConfig, view: &ParamsView<'_>) -> VerifyReport {
    let mut report = verify_config(cfg);
    report.diagnostics.extend(lint_params(cfg, view));
    report
}
