//! Typed diagnostics and the verification report.
//!
//! Every check in this crate reports through [`Diagnostic`]: a stable code
//! (`AV001`, `AV002`, …), a severity, a human-readable message, and
//! structured `key = value` context. The full set of codes is tabulated in
//! `docs/DESIGN.md`. A [`VerifyReport`] bundles the diagnostics with the
//! deadlock certificate and exports to JSON through `anton-obs`.

use std::fmt;

use anton_analysis::deadlock::ChannelVc;
use anton_core::config::GlobalEndpoint;
use anton_core::net::RoutePath;
use anton_obs::json::Json;
use anton_obs::link_json::link_to_json;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but simulable; reported, never fatal.
    Warning,
    /// The configuration is broken; pre-flight enforcement refuses to run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of the lint engine or the deadlock verifier.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code (`AV0xx` for configuration checks, `AV1xx` for
    /// command-line usage errors).
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Structured `(key, value)` context.
    pub context: Vec<(String, String)>,
}

impl Diagnostic {
    /// An [`Severity::Error`] diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// A [`Severity::Warning`] diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// Appends one `key = value` context entry (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl ToString) -> Diagnostic {
        self.context.push((key.into(), value.to_string()));
        self
    }

    /// Exports the diagnostic as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("code", Json::from(self.code)),
            ("severity", Json::from(self.severity.to_string())),
            ("message", Json::from(self.message.as_str())),
            (
                "context",
                Json::Obj(
                    self.context
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        for (k, v) in &self.context {
            write!(f, "\n    {k} = {v}")?;
        }
        Ok(())
    }
}

/// A concrete route witnessing one edge of a dependency cycle: a packet
/// following it holds `holds` while requesting `waits_for`.
#[derive(Debug, Clone)]
pub struct WitnessRoute {
    /// Source endpoint of the witness packet.
    pub src: GlobalEndpoint,
    /// Destination endpoint.
    pub dst: GlobalEndpoint,
    /// The route taken, in the topology's native path representation.
    pub path: RoutePath,
    /// The `(channel, VC)` the packet holds.
    pub holds: ChannelVc,
    /// The `(channel, VC)` the packet waits for while holding `holds`.
    pub waits_for: ChannelVc,
}

impl WitnessRoute {
    /// Exports the witness as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("src".to_string(), Json::from(self.src.to_string())),
            ("dst".to_string(), Json::from(self.dst.to_string())),
        ];
        match &self.path {
            RoutePath::Torus { hops, slice } => {
                pairs.push((
                    "hops".to_string(),
                    Json::arr(hops.iter().map(|h| Json::from(h.to_string()))),
                ));
                pairs.push(("slice".to_string(), Json::from(u64::from(slice.0))));
            }
            RoutePath::Nodes(nodes) => {
                pairs.push((
                    "nodes".to_string(),
                    Json::arr(nodes.iter().map(|n| Json::from(u64::from(n.0)))),
                ));
            }
        }
        pairs.push(("holds".to_string(), channel_vc_to_json(&self.holds)));
        pairs.push(("waits_for".to_string(), channel_vc_to_json(&self.waits_for)));
        Json::Obj(pairs)
    }
}

impl fmt::Display for WitnessRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} via {}: holds {}@{} waits {}@{}",
            self.src,
            self.dst,
            self.path,
            self.holds.0,
            self.holds.1,
            self.waits_for.0,
            self.waits_for.1
        )
    }
}

fn channel_vc_to_json(cv: &ChannelVc) -> Json {
    Json::obj([
        ("link", link_to_json(&cv.0)),
        ("vc", Json::from(u64::from(cv.1 .0))),
    ])
}

/// A minimal concrete dependency cycle extracted from a failed certification.
#[derive(Debug, Clone)]
pub struct CycleCounterexample {
    /// The `(channel, VC)` ring, in dependency order.
    pub cycle: Vec<ChannelVc>,
    /// Concrete routes witnessing the cycle's edges (capped; one per edge).
    pub witnesses: Vec<WitnessRoute>,
}

impl CycleCounterexample {
    /// Exports the counterexample as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "cycle",
                Json::Arr(self.cycle.iter().map(channel_vc_to_json).collect()),
            ),
            (
                "witnesses",
                Json::Arr(self.witnesses.iter().map(WitnessRoute::to_json).collect()),
            ),
        ])
    }
}

/// The result of symbolically certifying a machine deadlock-free.
#[derive(Debug, Clone)]
pub struct DeadlockCertificate {
    /// Label of the certified model — for a torus, the VC policy and
    /// dateline setting (e.g. `"anton(n+1) policy, datelines on"`); for
    /// other topologies, the routing functions certified.
    pub model: String,
    /// Live `(channel, VC)` pairs in the symbolic dependency graph.
    pub nodes: usize,
    /// Dependency edges in the symbolic graph.
    pub edges: usize,
    /// Whether the graph is acyclic (the machine is deadlock-free).
    pub acyclic: bool,
    /// Present iff `!acyclic`.
    pub counterexample: Option<CycleCounterexample>,
}

impl DeadlockCertificate {
    /// Exports the certificate as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("model".to_string(), Json::from(self.model.as_str())),
            ("nodes".to_string(), Json::from(self.nodes)),
            ("edges".to_string(), Json::from(self.edges)),
            ("acyclic".to_string(), Json::from(self.acyclic)),
        ];
        if let Some(ce) = &self.counterexample {
            pairs.push(("counterexample".to_string(), ce.to_json()));
        }
        Json::Obj(pairs)
    }
}

impl fmt::Display for DeadlockCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.acyclic {
            write!(
                f,
                "certified deadlock-free: {}, {} channel-VC pairs, {} dependency edges, acyclic",
                self.model, self.nodes, self.edges
            )
        } else {
            let len = self.counterexample.as_ref().map_or(0, |ce| ce.cycle.len());
            write!(
                f,
                "NOT deadlock-free: {}, dependency cycle of length {len}",
                self.model
            )
        }
    }
}

/// The full output of a verification run: lint diagnostics plus the
/// deadlock certificate.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// All diagnostics, in emission order.
    pub diagnostics: Vec<Diagnostic>,
    /// The symbolic deadlock certificate, when certification ran.
    pub certificate: Option<DeadlockCertificate>,
}

impl VerifyReport {
    /// Whether any diagnostic is [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics.len() - self.num_errors()
    }

    /// One-line summary of the verification outcome.
    pub fn summary(&self) -> String {
        let verdict = match &self.certificate {
            Some(c) if c.acyclic => "deadlock-free",
            Some(_) => "DEADLOCK-PRONE",
            None => "deadlock status unchecked",
        };
        format!(
            "{verdict}; {} error(s), {} warning(s)",
            self.num_errors(),
            self.num_warnings()
        )
    }

    /// Exports the report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("summary", Json::from(self.summary())),
            ("ok", Json::from(!self.has_errors())),
            (
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            (
                "certificate",
                self.certificate
                    .as_ref()
                    .map_or(Json::Null, DeadlockCertificate::to_json),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_renders_code_and_context() {
        let d = Diagnostic::error("AV007", "zero buffer depth").with("buffer_depth", 0);
        let text = d.to_string();
        assert!(text.starts_with("error[AV007]: zero buffer depth"));
        assert!(text.contains("buffer_depth = 0"));
        let j = d.to_json();
        assert_eq!(j.get("code").unwrap().as_str(), Some("AV007"));
        assert_eq!(j.get("severity").unwrap().as_str(), Some("error"));
    }

    #[test]
    fn report_summary_counts_severities() {
        let report = VerifyReport {
            diagnostics: vec![
                Diagnostic::error("AV001", "a"),
                Diagnostic::warning("AV008", "b"),
                Diagnostic::warning("AV013", "c"),
            ],
            certificate: None,
        };
        assert!(report.has_errors());
        assert_eq!(report.num_errors(), 1);
        assert_eq!(report.num_warnings(), 2);
        assert!(report.summary().contains("1 error(s), 2 warning(s)"));
        assert_eq!(report.to_json().get("ok").unwrap().as_bool(), Some(false));
    }
}
