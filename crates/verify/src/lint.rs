//! The configuration lint engine.
//!
//! Every check emits a typed [`Diagnostic`] with a stable code. Codes
//! `AV0xx` cover machine configuration and simulation parameters; `AV1xx`
//! are reserved for command-line usage errors raised by the experiment
//! binaries. The full table lives in `docs/DESIGN.md`; in brief:
//!
//! | code  | severity | check |
//! |-------|----------|-------|
//! | AV001 | error    | VC budget below the `n+1` the shape needs |
//! | AV002 | error    | channel-dependency cycle (symbolic verifier) |
//! | AV003 | error    | dateline promotion disabled on a wrapping torus |
//! | AV004 | error    | direction-order routing fails to converge |
//! | AV005 | error    | on-chip mesh dependency cycle |
//! | AV006 | error    | VC count does not fit the 16-entry wire mask |
//! | AV007 | error    | zero router / torus buffer depth |
//! | AV008 | warning  | torus buffers below the retransmission BDP |
//! | AV009 | error/warning | non-finite, negative, or zero latency |
//! | AV010 | error    | zero torus link latency |
//! | AV011 | error/warning | fault schedule references a bad link |
//! | AV012 | error    | bit-error rate outside `[0, 1]` |
//! | AV013 | warning  | empty or inverted link-down window |
//! | AV014 | error    | event tracing enabled with a zero-capacity ring |
//! | AV015 | error    | zero watchdog period (trips immediately) |
//! | AV016 | error    | arbiter `m_bits` / weight-table inconsistency |
//! | AV017 | error/warning | go-back-N window or timeout misconfigured |
//! | AV018 | error/warning | non-finite or negative energy coefficient |
//! | AV019 | error    | shard count zero or above the node count |
//! | AV020 | error    | down links partition the network (unreachable node pairs) |
//! | AV021 | error    | degraded route tables uncertifiable (VC-incompatible or cyclic) |
//! | AV022 | error    | routing function requests a VC outside its declared budget |
//! | AV023 | error    | routing function emits a link its topology cannot address |
//! | AV101 | error    | unknown traffic pattern / workload name |
//! | AV102 | error    | torus extent outside `1..=16` |
//! | AV103 | error    | cannot write an output file |

use anton_analysis::weights::ArbiterWeightSet;
use anton_core::chip::{LinkGroup, MeshCoord, NUM_ROUTERS};
use anton_core::config::MachineConfig;
use anton_fault::{FaultKind, FaultSchedule};

use crate::model::VerifyModel;
use crate::report::Diagnostic;

/// Minimum torus buffering (flits) that keeps a reliable link busy across
/// the go-back-N shim: the 89.6 Gb/s effective rate is 45 wire cycles per
/// 14 payload-flit frame, and two frames must be in flight —
/// `⌈2 · 44 · 14 / 45⌉ = 28`. (Mirrors the sizing argument behind the
/// simulator's default of 32.)
pub const MIN_TORUS_BDP_FLITS: u8 = 28;

/// The parameters of a simulation run, as seen by the lint engine.
///
/// `anton-sim` depends on this crate (pre-flight runs when the builder
/// constructs a `Sim`), so the lints cannot read `SimParams` directly; the
/// simulator projects
/// its parameters into this view instead. [`ParamsView::reference`]
/// duplicates the paper-default values for standalone use (`verify_config`
/// without a simulator); `anton-sim`'s tests pin the two in sync.
#[derive(Debug, Clone)]
pub struct ParamsView<'a> {
    /// Router input buffer depth per VC (flits).
    pub buffer_depth: u8,
    /// Torus arrival buffer depth per VC (flits).
    pub torus_buffer_depth: u8,
    /// Software injection overhead (ns).
    pub sw_inject_ns: f64,
    /// Receive handler dispatch overhead (ns).
    pub handler_dispatch_ns: f64,
    /// SerDes + wire flight time per torus hop (ns).
    pub serdes_wire_ns: f64,
    /// Torus link latency in cycles.
    pub torus_link_cycles: u64,
    /// Inverse-weight bit width when weighted arbitration is configured.
    pub arbiter_m_bits: Option<u32>,
    /// Idle cycles before the deadlock watchdog trips.
    pub watchdog_cycles: u64,
    /// Fault schedule, when fault injection is active.
    pub fault: Option<&'a FaultSchedule>,
    /// Whether flight-recorder event tracing is enabled.
    pub trace_events: bool,
    /// Flight-recorder ring capacity (events).
    pub trace_ring_capacity: usize,
    /// Fixed energy per packet (pJ).
    pub energy_fixed_pj: f64,
    /// Energy per toggled wire bit (pJ).
    pub energy_per_flip_pj: f64,
    /// Buffer activation energy (pJ).
    pub energy_activation_pj: f64,
    /// Energy per stored set bit (pJ).
    pub energy_per_set_bit_pj: f64,
    /// Worker shards of the parallel kernel (`1` = serial).
    pub shards: usize,
}

impl ParamsView<'static> {
    /// The paper-default parameters (mirrors `anton-sim`'s defaults; the
    /// simulator's tests assert the two stay identical).
    pub fn reference() -> ParamsView<'static> {
        ParamsView {
            buffer_depth: 8,
            torus_buffer_depth: 32,
            sw_inject_ns: 26.0,
            handler_dispatch_ns: 23.0,
            serdes_wire_ns: 29.0,
            torus_link_cycles: 44,
            arbiter_m_bits: None,
            watchdog_cycles: 50_000,
            fault: None,
            trace_events: false,
            trace_ring_capacity: 256,
            energy_fixed_pj: 42.7,
            energy_per_flip_pj: 0.837,
            energy_activation_pj: 34.4,
            energy_per_set_bit_pj: 0.250,
            shards: 1,
        }
    }
}

/// Lints the machine configuration proper (topology, VC budget, routing
/// tables). Deadlock certification (AV002) is separate — see
/// [`crate::verify_model`].
pub fn lint_config(cfg: &MachineConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = usable_dim_count(cfg);

    // AV001: the promotion scheme needs n+1 VCs in both groups.
    for group in [LinkGroup::M, LinkGroup::T] {
        let have = cfg.vc_policy.num_vcs(group);
        if u32::from(have) < u32::from(n) + 1 {
            out.push(
                Diagnostic::error(
                    "AV001",
                    format!(
                        "policy {} provides {have} {group:?}-group VC(s) but a \
                         {n}-dimensional torus needs at least n+1 = {}",
                        cfg.vc_policy,
                        n + 1
                    ),
                )
                .with("policy", cfg.vc_policy)
                .with("group", format!("{group:?}"))
                .with("vcs", have)
                .with("usable_dims", n),
            );
        }
    }

    // AV006: two traffic classes x VCs must fit the 16-entry wire VC mask.
    for group in [LinkGroup::M, LinkGroup::T] {
        let have = u32::from(cfg.vc_policy.num_vcs(group));
        if 2 * have > 16 {
            out.push(
                Diagnostic::error(
                    "AV006",
                    format!(
                        "2 traffic classes x {have} {group:?}-group VCs exceed the \
                         16-entry wire VC mask"
                    ),
                )
                .with("vcs", have),
            );
        }
    }

    // AV004: the direction-order table must route every router pair within
    // the mesh diameter (6 hops on a 4x4 mesh).
    let mut bad_pairs = 0usize;
    for a in MeshCoord::all() {
        for b in MeshCoord::all() {
            let mut cur = a;
            let mut steps = 0;
            while let Some(d) = cfg.dir_order.next_dir(cur, b) {
                match cur.step(d) {
                    Some(next) => cur = next,
                    None => break,
                }
                steps += 1;
                if steps > 6 {
                    break;
                }
            }
            if cur != b {
                bad_pairs += 1;
            }
        }
    }
    if bad_pairs > 0 {
        out.push(
            Diagnostic::error(
                "AV004",
                format!(
                    "direction order {} fails to route {bad_pairs} router pair(s) \
                     within the mesh diameter",
                    cfg.dir_order
                ),
            )
            .with("dir_order", cfg.dir_order)
            .with("bad_pairs", bad_pairs),
        );
    }

    // AV005: single-VC direction-order mesh routing must itself be
    // deadlock-free on one generic chip. Build the (router, direction) link
    // dependency graph over all router-pair routes and check acyclicity.
    if let Some(cycle_len) = mesh_dep_cycle(cfg) {
        out.push(
            Diagnostic::error(
                "AV005",
                format!(
                    "direction order {} creates an on-chip mesh dependency cycle \
                     of length {cycle_len}",
                    cfg.dir_order
                ),
            )
            .with("dir_order", cfg.dir_order),
        );
    }

    out
}

fn usable_dim_count(cfg: &MachineConfig) -> u8 {
    anton_core::topology::Dim::ALL
        .iter()
        .filter(|d| cfg.shape.k(**d) > 1)
        .count() as u8
}

/// Cycle check over the on-chip mesh links of one generic node under the
/// configured direction order. Returns the cycle length if one exists.
fn mesh_dep_cycle(cfg: &MachineConfig) -> Option<usize> {
    // Link index: from.index() * 4 + dir.index() (64 mesh links).
    let n = NUM_ROUTERS * 4;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in MeshCoord::all() {
        for b in MeshCoord::all() {
            let mut cur = a;
            let mut prev: Option<usize> = None;
            while let Some(d) = cfg.dir_order.next_dir(cur, b) {
                let idx = cur.index() * 4 + d.index();
                if let Some(p) = prev {
                    if !adj[p].contains(&idx) {
                        adj[p].push(idx);
                    }
                }
                prev = Some(idx);
                cur = cur.step(d)?;
            }
        }
    }
    // Three-color DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        W,
        G,
        B,
    }
    let mut color = vec![C::W; n];
    let mut depth_of = vec![0usize; n];
    for s in 0..n {
        if color[s] != C::W {
            continue;
        }
        let mut stack = vec![(s, 0usize)];
        color[s] = C::G;
        depth_of[s] = 0;
        while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
            if *ei < adj[u].len() {
                let v = adj[u][*ei];
                *ei += 1;
                match color[v] {
                    C::W => {
                        color[v] = C::G;
                        depth_of[v] = stack.len();
                        stack.push((v, 0));
                    }
                    C::G => return Some(stack.len() - depth_of[v]),
                    C::B => {}
                }
            } else {
                color[u] = C::B;
                stack.pop();
            }
        }
    }
    None
}

/// Model-level lints: [`lint_config`] plus checks that depend on the
/// verifier's model knobs (AV003).
pub fn lint_model(model: &VerifyModel) -> Vec<Diagnostic> {
    let mut out = lint_config(&model.cfg);
    if !model.datelines && usable_dim_count(&model.cfg) > 0 {
        out.push(
            Diagnostic::error(
                "AV003",
                "dateline VC promotion is disabled on a wrapping torus — \
                 ring dependencies are unbroken",
            )
            .with("shape", model.cfg.shape),
        );
    }
    out
}

/// Lints simulation parameters against the configuration.
pub fn lint_params(cfg: &MachineConfig, view: &ParamsView<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // AV007: zero buffering cannot move a single flit.
    if view.buffer_depth == 0 {
        out.push(Diagnostic::error("AV007", "router buffer depth is zero").with("buffer_depth", 0));
    }
    if view.torus_buffer_depth == 0 {
        out.push(
            Diagnostic::error("AV007", "torus buffer depth is zero").with("torus_buffer_depth", 0),
        );
    } else if view.torus_buffer_depth < MIN_TORUS_BDP_FLITS {
        // AV008: below the go-back-N bandwidth-delay product the reliable
        // link can never reach the 89.6 Gb/s derated rate.
        out.push(
            Diagnostic::warning(
                "AV008",
                format!(
                    "torus buffer depth {} is below the {MIN_TORUS_BDP_FLITS}-flit \
                     retransmission bandwidth-delay product; links cannot sustain \
                     the 89.6 Gb/s effective rate",
                    view.torus_buffer_depth
                ),
            )
            .with("torus_buffer_depth", view.torus_buffer_depth)
            .with("min_flits", MIN_TORUS_BDP_FLITS),
        );
    }

    // AV009: latency parameters.
    for (name, v) in [
        ("sw_inject_ns", view.sw_inject_ns),
        ("handler_dispatch_ns", view.handler_dispatch_ns),
        ("serdes_wire_ns", view.serdes_wire_ns),
    ] {
        if !v.is_finite() || v < 0.0 {
            out.push(
                Diagnostic::error(
                    "AV009",
                    format!("latency {name} = {v} is not a valid delay"),
                )
                .with(name, v),
            );
        } else if v == 0.0 {
            out.push(
                Diagnostic::warning(
                    "AV009",
                    format!("latency {name} is zero — the modeled overhead vanishes"),
                )
                .with(name, v),
            );
        }
    }

    // AV010: zero-cycle torus links break the latency model.
    if view.torus_link_cycles == 0 {
        out.push(Diagnostic::error(
            "AV010",
            "torus link latency is zero cycles",
        ));
    }

    // AV015: the watchdog compares idle_cycles >= watchdog_cycles, so zero
    // trips on the very first idle cycle.
    if view.watchdog_cycles == 0 {
        out.push(Diagnostic::error(
            "AV015",
            "deadlock watchdog period is zero — it trips on the first idle cycle",
        ));
    }

    // AV016: inverse-weight bit width.
    if let Some(m_bits) = view.arbiter_m_bits {
        if !(2..=16).contains(&m_bits) {
            out.push(
                Diagnostic::error(
                    "AV016",
                    format!("arbiter weight width m_bits = {m_bits} outside 2..=16"),
                )
                .with("m_bits", m_bits),
            );
        }
    }

    // AV014: tracing into a zero-capacity ring records nothing and the
    // deadlock report loses its evidence.
    if view.trace_events && view.trace_ring_capacity == 0 {
        out.push(Diagnostic::error(
            "AV014",
            "event tracing enabled with a zero-capacity flight-recorder ring",
        ));
    }

    // AV018: energy coefficients.
    for (name, v) in [
        ("fixed_pj", view.energy_fixed_pj),
        ("per_flip_pj", view.energy_per_flip_pj),
        ("activation_pj", view.energy_activation_pj),
        ("per_set_bit_pj", view.energy_per_set_bit_pj),
    ] {
        if !v.is_finite() {
            out.push(
                Diagnostic::error(
                    "AV018",
                    format!("energy coefficient {name} = {v} is not finite"),
                )
                .with(name, v),
            );
        } else if v < 0.0 {
            out.push(
                Diagnostic::warning(
                    "AV018",
                    format!("energy coefficient {name} = {v} is negative"),
                )
                .with(name, v),
            );
        }
    }

    // AV019: the sharded kernel assigns one contiguous node sub-brick per
    // shard, so the count must be 1..=num_nodes.
    if view.shards == 0 {
        out.push(Diagnostic::error("AV019", "shard count is zero").with("shards", 0));
    } else if view.shards > cfg.shape.num_nodes() {
        out.push(
            Diagnostic::error(
                "AV019",
                format!(
                    "{} shards exceed the {}-node machine — a shard needs at \
                     least one node",
                    view.shards,
                    cfg.shape.num_nodes()
                ),
            )
            .with("shards", view.shards)
            .with("nodes", cfg.shape.num_nodes()),
        );
    }

    if let Some(fault) = view.fault {
        lint_fault(cfg, view, fault, &mut out);
    }

    out
}

fn lint_fault(
    cfg: &MachineConfig,
    view: &ParamsView<'_>,
    fault: &FaultSchedule,
    out: &mut Vec<Diagnostic>,
) {
    // AV012: bit-error rates are probabilities.
    let bad_ber = |ber: f64| !(0.0..=1.0).contains(&ber) || ber.is_nan();
    if bad_ber(fault.default_ber) {
        out.push(
            Diagnostic::error(
                "AV012",
                format!(
                    "default bit-error rate {} outside [0, 1]",
                    fault.default_ber
                ),
            )
            .with("default_ber", fault.default_ber),
        );
    }
    for (i, f) in fault.faults.iter().enumerate() {
        // AV011: the fault must name a real link.
        if f.from.0 as usize >= cfg.shape.num_nodes() {
            out.push(
                Diagnostic::error(
                    "AV011",
                    format!(
                        "fault #{i} references node {} of a {}-node machine",
                        f.from.0,
                        cfg.shape.num_nodes()
                    ),
                )
                .with("fault", i)
                .with("node", f.from.0),
            );
        } else if cfg.shape.k(f.chan.dir.dim) <= 1 {
            out.push(
                Diagnostic::warning(
                    "AV011",
                    format!(
                        "fault #{i} targets a {} link, but that dimension has extent 1 \
                         — no minimal route uses it",
                        f.chan.dir
                    ),
                )
                .with("fault", i)
                .with("dim", f.chan.dir.dim),
            );
        }
        match f.kind {
            FaultKind::Degraded { ber } => {
                if bad_ber(ber) {
                    out.push(
                        Diagnostic::error(
                            "AV012",
                            format!("fault #{i} bit-error rate {ber} outside [0, 1]"),
                        )
                        .with("fault", i)
                        .with("ber", ber),
                    );
                }
            }
            FaultKind::Down {
                from_cycle,
                until_cycle,
            } => {
                // AV013: an empty window never fires — almost certainly a
                // typo in the schedule.
                if until_cycle <= from_cycle {
                    out.push(
                        Diagnostic::warning(
                            "AV013",
                            format!(
                                "fault #{i} down-window [{from_cycle}, {until_cycle}) is empty"
                            ),
                        )
                        .with("fault", i),
                    );
                }
            }
        }
    }
    // AV017: go-back-N parameters.
    if fault.gbn.window == 0 || fault.gbn.window >= 128 {
        out.push(
            Diagnostic::error(
                "AV017",
                format!(
                    "go-back-N window {} invalid (must be 1..=127 so sequence-number \
                     halves disambiguate)",
                    fault.gbn.window
                ),
            )
            .with("window", fault.gbn.window),
        );
    }
    let min_timeout = 2 * view.torus_link_cycles;
    if fault.gbn.timeout < min_timeout {
        out.push(
            Diagnostic::warning(
                "AV017",
                format!(
                    "go-back-N timeout {} is below one round trip ({} cycles); \
                     fault-free traffic will rewind spuriously",
                    fault.gbn.timeout, min_timeout
                ),
            )
            .with("timeout", fault.gbn.timeout)
            .with("round_trip", min_timeout),
        );
    }
}

/// Lints a computed arbiter weight set (AV016). Issues are aggregated:
/// at most one diagnostic per kind, carrying a count.
pub fn lint_weights(set: &ArbiterWeightSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !(2..=16).contains(&set.m_bits) {
        out.push(
            Diagnostic::error(
                "AV016",
                format!(
                    "arbiter weight width m_bits = {} outside 2..=16",
                    set.m_bits
                ),
            )
            .with("m_bits", set.m_bits),
        );
        return out;
    }
    let max_w = (1u32 << set.m_bits) - 1;
    let mut zero = 0usize;
    let mut overflow = 0usize;
    let mut mismatched = 0usize;
    let all_tables = set
        .tables
        .values()
        .chain(set.chan_tables.values())
        .chain(set.input_tables.values());
    for table in all_tables {
        for row in table {
            if row.len() != set.num_patterns {
                mismatched += 1;
            }
            for &w in row {
                if w == 0 {
                    zero += 1;
                } else if w > max_w {
                    overflow += 1;
                }
            }
        }
    }
    if zero > 0 {
        out.push(
            Diagnostic::error(
                "AV016",
                format!("{zero} arbiter weight(s) are zero — a zero weight never wins arbitration"),
            )
            .with("zero_weights", zero),
        );
    }
    if overflow > 0 {
        out.push(
            Diagnostic::error(
                "AV016",
                format!(
                    "{overflow} arbiter weight(s) exceed the {}-bit field (max {max_w})",
                    set.m_bits
                ),
            )
            .with("overflowing_weights", overflow)
            .with("max_w", max_w),
        );
    }
    if mismatched > 0 {
        out.push(
            Diagnostic::error(
                "AV016",
                format!(
                    "{mismatched} weight row(s) do not cover all {} pattern(s)",
                    set.num_patterns
                ),
            )
            .with("mismatched_rows", mismatched),
        );
    }
    out
}
