//! Full-mesh certification: the first non-torus instance of the engine.
//!
//! A full mesh with one dedicated channel per ordered node pair and
//! single-hop routing is deadlock-free with **zero virtual channels** — no
//! inter-node channel ever waits on another, so the dependency graph is
//! trivially acyclic at a single VC. [`verify_mesh`] proves that through
//! the same engine that certifies the torus, and — run against the
//! deliberately cyclic ring-forwarding rule — produces the same minimal
//! concrete cycle witnesses.

use anton_core::mesh::{FullMesh, MeshRouting, MeshRule};

use crate::engine::certify_routing;
use crate::report::{Diagnostic, VerifyReport};

/// Certifies VC-free routing on an `nodes`-node full mesh under `rule`.
///
/// [`MeshRule::Direct`] must certify acyclic with a single VC;
/// [`MeshRule::Ring`] must fail with a concrete dependency cycle around the
/// ring of direct channels. A cycle adds an `AV002` error carrying the
/// counterexample summary, mirroring torus certification.
pub fn verify_mesh(nodes: usize, rule: MeshRule) -> VerifyReport {
    let topo = FullMesh::new(nodes);
    let rf = MeshRouting::new(nodes, rule);
    let (certificate, mut diagnostics) =
        certify_routing(&topo, &[&rf], format!("{} routing, zero VCs", rule));
    if !certificate.acyclic {
        let mut d = Diagnostic::error(
            "AV002",
            format!("channel dependency graph has a cycle — {certificate}"),
        );
        if let Some(ce) = &certificate.counterexample {
            d = d.with("cycle_length", ce.cycle.len());
            for (i, (link, vc)) in ce.cycle.iter().take(6).enumerate() {
                d = d.with(format!("cycle[{i}]"), format!("{link}@{vc}"));
            }
            if let Some(w) = ce.witnesses.first() {
                d = d.with("witness", w);
            }
        }
        diagnostics.push(d);
    }
    VerifyReport {
        diagnostics,
        certificate: Some(certificate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mesh_certifies_acyclic_with_zero_vcs() {
        for nodes in [2, 3, 8, 16] {
            let report = verify_mesh(nodes, MeshRule::Direct);
            assert!(!report.has_errors(), "{:?}", report.diagnostics);
            let cert = report.certificate.expect("certificate");
            assert!(cert.acyclic, "{cert}");
            assert!(cert.edges > 0);
            // Zero VCs: every live pair sits at VC 0 of a single-VC graph.
            assert!(cert.model.contains("zero VCs"));
        }
    }

    #[test]
    fn ring_mesh_is_rejected_with_a_minimal_witnessed_cycle() {
        let report = verify_mesh(5, MeshRule::Ring);
        assert!(report.has_errors());
        assert!(report.diagnostics.iter().any(|d| d.code == "AV002"));
        let cert = report.certificate.expect("certificate");
        assert!(!cert.acyclic);
        let ce = cert.counterexample.expect("cycle");
        // The minimal cycle is the 5 direct channels around the ring.
        assert_eq!(ce.cycle.len(), 5);
        assert!(!ce.witnesses.is_empty());
        for w in &ce.witnesses {
            assert_ne!(w.src, w.dst);
        }
    }
}
