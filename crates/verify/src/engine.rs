//! The topology-agnostic symbolic certification engine.
//!
//! Everything the certifier knows about a network comes through two traits:
//! a [`Topology`] that can address links, and one or more
//! [`RoutingFunction`]s whose abstract transition systems describe every
//! route the network can carry. The engine explores each routing function
//! breadth-first over `(link, VC, abstract state)` arrivals, records every
//! consecutive `(link, VC)` pair a transition acquires as a
//! channel-dependency edge, and checks the union graph for cycles:
//!
//! ```text
//!   Topology ─────────┐
//!                     ├─► build_routing_graph ─► SymGraph ─► find_cycle
//!   RoutingFunction ──┘          │                              │
//!        (roots/transitions)     └── AV022/AV023 diags      minimize
//!                                                               │
//!   RoutingFunction::witnesses ◄── wanted cycle edges ──────────┘
//!                     │
//!                     ▼
//!        DeadlockCertificate { acyclic | counterexample + witnesses }
//! ```
//!
//! Passing several routing functions certifies their **union** — exactly
//! what the degraded-table install gate needs (healthy traffic plus every
//! epoch's rerouted traffic can be in flight at once, so their dependency
//! edges must be jointly acyclic).
//!
//! A routing function that steps outside its declared envelope is reported
//! rather than trusted: a VC beyond the declared budget raises `AV022`, a
//! link the topology cannot address raises `AV023`, and the offending
//! transition is excluded from the graph (certification then fails closed
//! through the error diagnostic).

use std::collections::{HashSet, VecDeque};

use anton_core::net::{Arrival, DepEdge, RoutingFunction, Topology};
use anton_core::trace::GlobalLink;
use anton_core::vc::Vc;

use crate::graph::SymGraph;
use crate::report::{CycleCounterexample, DeadlockCertificate, Diagnostic, WitnessRoute};

/// Cap on concrete witness routes attached to a counterexample.
const MAX_WITNESSES: usize = 8;

/// Builds the union channel-dependency graph of `routings` over `topo` by
/// breadth-first exploration of each routing function's transition system.
///
/// Envelope violations (`AV022` out-of-budget VC, `AV023` unaddressable
/// link) are appended to `diags` — once per routing function per code —
/// and the offending transitions are dropped from the graph.
pub fn build_routing_graph<'t>(
    topo: &'t dyn Topology,
    routings: &[&dyn RoutingFunction],
    diags: &mut Vec<Diagnostic>,
) -> SymGraph<'t> {
    let vcs = routings.iter().map(|r| r.num_vcs()).max().unwrap_or(1);
    let mut g = SymGraph::new(topo, vcs);
    for rf in routings {
        let mut bad_vc = false;
        let mut bad_link = false;
        let mut seen: HashSet<(u32, u64)> = HashSet::new();
        let mut queue: VecDeque<Arrival> = VecDeque::new();
        for root in rf.roots() {
            let Some(idx) = g.index_of(&root.link, root.vc) else {
                if !bad_link {
                    bad_link = true;
                    diags.push(unaddressable_diag(topo, rf, &root.link, root.vc));
                }
                continue;
            };
            if seen.insert((idx, root.state.0)) {
                queue.push_back(root);
            }
        }
        while let Some(arrival) = queue.pop_front() {
            'progress: for prog in rf.transitions(&arrival) {
                // Validate the whole step chain before inserting any edge,
                // so a bad transition contributes nothing.
                let mut chain = Vec::with_capacity(prog.steps.len() + 1);
                chain.push(g.index(&arrival.link, arrival.vc));
                for (link, vc) in &prog.steps {
                    if usize::from(vc.0) >= vcs {
                        if !bad_vc {
                            bad_vc = true;
                            diags.push(
                                Diagnostic::error(
                                    "AV022",
                                    format!(
                                        "routing function `{}` requested {link}@{vc}, outside \
                                         its declared budget of {vcs} VCs",
                                        rf.describe()
                                    ),
                                )
                                .with("vc", vc.0)
                                .with("num_vcs", vcs),
                            );
                        }
                        continue 'progress;
                    }
                    let Some(idx) = g.index_of(link, *vc) else {
                        if !bad_link {
                            bad_link = true;
                            diags.push(unaddressable_diag(topo, rf, link, *vc));
                        }
                        continue 'progress;
                    };
                    chain.push(idx);
                }
                for w in chain.windows(2) {
                    g.add_edge_idx(w[0], w[1]);
                }
                if let Some((node, state)) = prog.next {
                    let (link, vc) = prog
                        .steps
                        .last()
                        .map_or((arrival.link, arrival.vc), |&(l, v)| (l, v));
                    let idx = g.index(&link, vc);
                    if seen.insert((idx, state.0)) {
                        queue.push_back(Arrival {
                            node,
                            link,
                            vc,
                            state,
                        });
                    }
                }
            }
        }
    }
    g
}

fn unaddressable_diag(
    topo: &dyn Topology,
    rf: &&dyn RoutingFunction,
    link: &GlobalLink,
    vc: Vc,
) -> Diagnostic {
    Diagnostic::error(
        "AV023",
        format!(
            "routing function `{}` emitted {link}@{vc}, which topology `{}` cannot address",
            rf.describe(),
            topo.describe()
        ),
    )
    .with("link", link)
}

/// Certifies the union of `routings` over `topo` deadlock-free, or extracts
/// a minimal concrete `(channel, VC)` cycle with witness routes when it is
/// not. `model` labels the certificate (e.g. `"anton(n+1) policy, datelines
/// on"`). Envelope diagnostics are returned alongside the certificate.
pub fn certify_routing(
    topo: &dyn Topology,
    routings: &[&dyn RoutingFunction],
    model: impl Into<String>,
) -> (DeadlockCertificate, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let g = build_routing_graph(topo, routings, &mut diags);
    let base = DeadlockCertificate {
        model: model.into(),
        nodes: g.num_live_nodes(),
        edges: g.num_edges(),
        acyclic: true,
        counterexample: None,
    };
    let Some(cycle) = g.find_cycle() else {
        return (base, diags);
    };
    let cycle = g.minimize_cycle(cycle);
    let cvs: Vec<(GlobalLink, Vc)> = cycle.iter().map(|&i| g.decode(i)).collect();
    let wanted: Vec<DepEdge> = (0..cvs.len())
        .map(|i| (cvs[i], cvs[(i + 1) % cvs.len()]))
        .collect();
    // Each routing function gets a chance to explain the edges no earlier
    // function could; first concrete route per edge wins.
    let mut routes: Vec<Option<WitnessRoute>> = vec![None; wanted.len()];
    for rf in routings {
        if routes.iter().filter(|w| w.is_some()).count() >= MAX_WITNESSES {
            break;
        }
        let missing: Vec<usize> = (0..wanted.len()).filter(|&i| routes[i].is_none()).collect();
        if missing.is_empty() {
            break;
        }
        let subset: Vec<DepEdge> = missing.iter().map(|&i| wanted[i]).collect();
        for (slot, w) in missing
            .into_iter()
            .zip(rf.witnesses(&subset, MAX_WITNESSES))
        {
            if let Some(c) = w {
                routes[slot] = Some(WitnessRoute {
                    src: c.src,
                    dst: c.dst,
                    path: c.path,
                    holds: c.holds,
                    waits_for: c.waits_for,
                });
            }
        }
    }
    let witnesses: Vec<WitnessRoute> = routes.into_iter().flatten().take(MAX_WITNESSES).collect();
    let cert = DeadlockCertificate {
        acyclic: false,
        counterexample: Some(CycleCounterexample {
            cycle: cvs,
            witnesses,
        }),
        ..base
    };
    (cert, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::mesh::{FullMesh, MeshRouting, MeshRule};
    use anton_core::net::Progress;
    use anton_core::topology::NodeId;

    /// A routing function that immediately violates its VC budget.
    #[derive(Debug)]
    struct BadVc;

    impl RoutingFunction for BadVc {
        fn describe(&self) -> String {
            "bad-vc test routing".into()
        }
        fn num_vcs(&self) -> usize {
            1
        }
        fn roots(&self) -> Vec<Arrival> {
            MeshRouting::new(2, MeshRule::Direct).roots()
        }
        fn transitions(&self, _arrival: &Arrival) -> Vec<Progress> {
            vec![Progress {
                steps: vec![(
                    GlobalLink::Direct {
                        from: NodeId(0),
                        to: NodeId(1),
                    },
                    Vc(7),
                )],
                next: None,
            }]
        }
    }

    /// A routing function that emits a link its topology does not have.
    #[derive(Debug)]
    struct BadLink;

    impl RoutingFunction for BadLink {
        fn describe(&self) -> String {
            "bad-link test routing".into()
        }
        fn num_vcs(&self) -> usize {
            1
        }
        fn roots(&self) -> Vec<Arrival> {
            MeshRouting::new(2, MeshRule::Direct).roots()
        }
        fn transitions(&self, _arrival: &Arrival) -> Vec<Progress> {
            vec![Progress {
                steps: vec![(
                    GlobalLink::Direct {
                        from: NodeId(0),
                        to: NodeId(99),
                    },
                    Vc(0),
                )],
                next: None,
            }]
        }
    }

    #[test]
    fn vc_budget_violation_raises_av022() {
        let topo = FullMesh::new(2);
        let (cert, diags) = certify_routing(&topo, &[&BadVc], "bad vc");
        assert!(diags.iter().any(|d| d.code == "AV022"), "{diags:?}");
        // The offending transition contributes no edges.
        assert_eq!(cert.edges, 0);
    }

    #[test]
    fn unaddressable_link_raises_av023() {
        let topo = FullMesh::new(2);
        let (cert, diags) = certify_routing(&topo, &[&BadLink], "bad link");
        assert!(diags.iter().any(|d| d.code == "AV023"), "{diags:?}");
        assert_eq!(cert.edges, 0);
    }

    /// A default-witness routing function: the engine must tolerate
    /// `witnesses` returning all-`None`.
    #[derive(Debug)]
    struct NoWitness;

    impl RoutingFunction for NoWitness {
        fn describe(&self) -> String {
            "witnessless ring".into()
        }
        fn num_vcs(&self) -> usize {
            1
        }
        fn roots(&self) -> Vec<Arrival> {
            MeshRouting::new(3, MeshRule::Ring).roots()
        }
        fn transitions(&self, arrival: &Arrival) -> Vec<Progress> {
            MeshRouting::new(3, MeshRule::Ring).transitions(arrival)
        }
    }

    #[test]
    fn cyclic_routing_without_witnesses_still_reports_the_cycle() {
        let topo = FullMesh::new(3);
        let (cert, diags) = certify_routing(&topo, &[&NoWitness], "ring, no witnesses");
        assert!(diags.is_empty(), "{diags:?}");
        assert!(!cert.acyclic);
        let ce = cert.counterexample.expect("cycle");
        assert!(!ce.cycle.is_empty());
        assert!(ce.witnesses.is_empty());
    }
}
