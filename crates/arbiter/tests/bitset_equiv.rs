//! Per-grant equivalence of the branchless bitmask arbitration core
//! ([`BitsetArbiter`]) against the reference arbiters.
//!
//! Two tiers:
//!
//! * up to 32 requestors, every policy is stepped in lockstep with its
//!   boxed reference implementation over random request streams — winners
//!   must agree on every grant, and the inverse-weighted policy must also
//!   agree on the full accumulator bank after every grant;
//! * 33..=64 requestors (beyond the reference arbiters' `u32` masks), the
//!   selection network is checked against [`priority_arb_spec64`] and the
//!   inverse-weighted policy against a direct scalar transcription of
//!   Figure 6's accumulator update.

use anton_arbiter::bitset::{lane_mask, priority_arb_fast2_64, rr_therm_after_grant64};
use anton_arbiter::priority::priority_arb_spec64;
use anton_arbiter::{
    AgeArbiter, ArbRequest, BitsetArbiter, FixedPriorityArbiter, InverseWeightedArbiter,
    PortArbiter, RoundRobinArbiter,
};
use proptest::prelude::*;

/// Deterministic per-step lane attributes derived from a stream seed
/// (splitmix64), so every (step, lane) pair gets an independent pattern
/// tag and age without carrying vectors around.
fn lane_attr(seed: u64, step: usize, lane: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + (step as u64) * 64 + lane as u64));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn reqs_of_mask(mask: u64, seed: u64, step: usize, npatterns: u8) -> Vec<ArbRequest> {
    let mut reqs = Vec::new();
    let mut rest = mask;
    while rest != 0 {
        let lane = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        let attr = lane_attr(seed, step, lane);
        reqs.push(ArbRequest {
            input: lane,
            pattern: (attr & 0xff) as u8 % npatterns,
            age: attr >> 8 & 0xffff,
        });
    }
    reqs
}

proptest! {
    /// Round-robin: winner-equal to `RoundRobinArbiter` on every grant.
    #[test]
    fn round_robin_matches_reference(
        k in 1usize..=32,
        stream in proptest::collection::vec(any::<u64>(), 1..60),
        seed in any::<u64>(),
    ) {
        let mask = lane_mask(k as u32);
        let mut bitset = BitsetArbiter::round_robin(k);
        let mut reference = RoundRobinArbiter::new(k);
        for (step, raw) in stream.iter().enumerate() {
            let req = raw & mask;
            let reqs = reqs_of_mask(req, seed, step, 4);
            let want = reference.pick(&reqs).map(|pos| reqs[pos].input);
            let got = bitset
                .pick_mask(req, |_| 0, |_| 0)
                .map(|w| w as usize);
            prop_assert_eq!(got, want, "step {} req {:#b}", step, req);
        }
    }

    /// Fixed priority: winner-equal to `FixedPriorityArbiter`.
    #[test]
    fn fixed_priority_matches_reference(
        k in 1usize..=32,
        stream in proptest::collection::vec(any::<u64>(), 1..60),
        seed in any::<u64>(),
    ) {
        let mask = lane_mask(k as u32);
        let mut bitset = BitsetArbiter::fixed_priority(k);
        let mut reference = FixedPriorityArbiter::new(k);
        for (step, raw) in stream.iter().enumerate() {
            let req = raw & mask;
            let reqs = reqs_of_mask(req, seed, step, 4);
            let want = reference.pick(&reqs).map(|pos| reqs[pos].input);
            let got = bitset
                .pick_mask(req, |_| 0, |_| 0)
                .map(|w| w as usize);
            prop_assert_eq!(got, want, "step {} req {:#b}", step, req);
        }
    }

    /// Age: winner-equal to `AgeArbiter`, ages drawn per (step, lane).
    #[test]
    fn age_matches_reference(
        k in 1usize..=32,
        stream in proptest::collection::vec(any::<u64>(), 1..60),
        seed in any::<u64>(),
    ) {
        let mask = lane_mask(k as u32);
        let mut bitset = BitsetArbiter::age(k);
        let mut reference = AgeArbiter::new(k);
        for (step, raw) in stream.iter().enumerate() {
            let req = raw & mask;
            let reqs = reqs_of_mask(req, seed, step, 4);
            let want = reference.pick(&reqs).map(|pos| reqs[pos].input);
            let got = bitset
                .pick_mask(req, |_| 0, |i| lane_attr(seed, step, i as usize) >> 8 & 0xffff)
                .map(|w| w as usize);
            prop_assert_eq!(got, want, "step {} req {:#b}", step, req);
        }
    }

    /// Inverse-weighted: winner-equal to `InverseWeightedArbiter` AND the
    /// full accumulator bank agrees after every grant, over random weight
    /// tables and multi-pattern request streams (pattern tags may exceed
    /// the table so the clamp path is exercised too).
    #[test]
    fn inverse_weighted_matches_reference(
        k in 1usize..=32,
        npatterns in 1usize..=3,
        m_bits in 2u32..=6,
        wseed in any::<u64>(),
        stream in proptest::collection::vec(any::<u64>(), 1..60),
        seed in any::<u64>(),
    ) {
        let max_w = (1u32 << m_bits) - 1;
        let weights: Vec<Vec<u32>> = (0..k)
            .map(|i| {
                (0..npatterns)
                    .map(|n| (lane_attr(wseed, n, i) as u32) % (max_w + 1))
                    .collect()
            })
            .collect();
        let mask = lane_mask(k as u32);
        let mut bitset = BitsetArbiter::inverse_weighted(weights.clone(), m_bits);
        let mut reference = InverseWeightedArbiter::new(weights, m_bits);
        for (step, raw) in stream.iter().enumerate() {
            let req = raw & mask;
            // Pattern labels 0..=3: with npatterns <= 3 some labels overrun
            // the table and must clamp identically on both sides.
            let reqs = reqs_of_mask(req, seed, step, 4);
            let want = reference.pick(&reqs).map(|pos| reqs[pos].input);
            let got = bitset
                .pick_mask(
                    req,
                    |i| (lane_attr(seed, step, i as usize) & 0xff) as u8 % 4,
                    |_| 0,
                )
                .map(|w| w as usize);
            prop_assert_eq!(got, want, "step {} req {:#b}", step, req);
            for i in 0..k {
                prop_assert_eq!(
                    bitset.accumulator(i),
                    reference.accumulator(i),
                    "accumulator {} diverged at step {}",
                    i,
                    step
                );
            }
        }
    }

    /// The 64-lane selection network matches `priority_arb_spec64` for
    /// arbitrary request/priority masks and thermometer states.
    #[test]
    fn fast2_64_matches_spec(
        k in 1usize..=64,
        req_raw in any::<u64>(),
        pri_raw in any::<u64>(),
        g in 0usize..64,
    ) {
        let mask = lane_mask(k as u32);
        let req = req_raw & mask;
        let pri = pri_raw & mask;
        let therm = rr_therm_after_grant64((g % k) as u32) & mask;
        prop_assert_eq!(
            priority_arb_fast2_64(req, pri, therm).map(|w| w as usize),
            priority_arb_spec64(req, pri, therm)
        );
    }

    /// Beyond the reference arbiters' 32-lane ceiling: the inverse-weighted
    /// policy at 33..=64 lanes is stepped against a direct scalar
    /// transcription of Figure 6's accumulator update + the 64-lane spec
    /// selector.
    #[test]
    fn inverse_weighted_wide_lanes_match_scalar_spec(
        k in 33usize..=64,
        m_bits in 2u32..=6,
        wseed in any::<u64>(),
        stream in proptest::collection::vec(any::<u64>(), 1..40),
        seed in any::<u64>(),
    ) {
        let max_w = (1u32 << m_bits) - 1;
        let weights: Vec<u32> = (0..k)
            .map(|i| (lane_attr(wseed, 0, i) as u32) % (max_w + 1))
            .collect();
        let mask = lane_mask(k as u32);
        let mut bitset =
            BitsetArbiter::inverse_weighted(weights.iter().map(|&w| vec![w]).collect(), m_bits);
        // Scalar model: accumulators + thermometer, updated per Figure 6.
        let msb = 1u32 << m_bits;
        let mut accum = vec![0u32; k];
        let mut therm = 0u64;
        for (step, raw) in stream.iter().enumerate() {
            let req = raw & mask;
            let pri = accum
                .iter()
                .enumerate()
                .filter(|(_, &a)| a & msb == 0)
                .fold(0u64, |m, (i, _)| m | 1 << i);
            let want = priority_arb_spec64(req, pri, therm);
            let got = bitset
                .pick_mask(req, |_| 0, |_| 0)
                .map(|w| w as usize);
            prop_assert_eq!(got, want, "step {} req {:#b}", step, req);
            if let Some(w) = want {
                let low_grant = accum[w] & msb != 0;
                for (i, a) in accum.iter_mut().enumerate().take(k) {
                    let clipped = *a & (msb - 1);
                    *a = if i == w {
                        clipped + weights[w]
                    } else if low_grant {
                        if *a & msb == 0 { 0 } else { clipped }
                    } else {
                        *a
                    };
                }
                therm = rr_therm_after_grant64(w as u32);
                for (i, &a) in accum.iter().enumerate().take(k) {
                    prop_assert_eq!(bitset.accumulator(i), a, "lane {}", i);
                }
            }
        }
    }

    /// The `PortArbiter` adapter (request slices in arbitrary order) agrees
    /// with the boxed references too — this is the interface the proptest
    /// microbenchmark and any remaining slice-based callers use.
    #[test]
    fn trait_adapter_matches_reference(
        k in 1usize..=32,
        stream in proptest::collection::vec(any::<u64>(), 1..40),
        seed in any::<u64>(),
    ) {
        let mask = lane_mask(k as u32);
        let mut bitset = BitsetArbiter::uniform_iw(k, 5);
        let mut reference = InverseWeightedArbiter::uniform(k, 5);
        for (step, raw) in stream.iter().enumerate() {
            let req = raw & mask;
            let mut reqs = reqs_of_mask(req, seed, step, 2);
            // Present requests highest-input-first: grant indices are
            // positions within the slice, so ordering must not matter.
            reqs.reverse();
            let want = reference.pick(&reqs);
            let got = bitset.pick(&reqs);
            prop_assert_eq!(got, want, "step {} req {:#b}", step, req);
        }
    }
}
