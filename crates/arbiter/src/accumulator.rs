//! The accumulator-update logic of Figure 6.
//!
//! Each arbiter input has an `(M+1)`-bit accumulator tracking its service
//! history scaled by the inverse of its expected load (Section 3.3).
//! Accumulator values are kept relative to a sliding window of `2^(M+1)`
//! values: inputs whose accumulator sits in the lower half of the window
//! (MSB clear) are high priority. When a low-priority input is granted —
//! which implies no high-priority input was requesting — the window shifts
//! by subtracting `2^M` from every accumulator, clamping underflows to zero.

/// A bank of `(M+1)`-bit accumulators, one per arbiter input — the
/// `accumulator_update` module of Figure 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumulatorBank {
    accum: Vec<u32>,
    m_bits: u32,
}

impl AccumulatorBank {
    /// Creates a bank of `k` accumulators with `M = m_bits` inverse-weight
    /// bits (the paper's RTL defaults to `M = 5`). All accumulators start at
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `m_bits` is 0 or exceeds 16.
    pub fn new(k: usize, m_bits: u32) -> AccumulatorBank {
        assert!(k > 0, "bank needs at least one input");
        assert!(
            (1..=16).contains(&m_bits),
            "m_bits={m_bits} out of range 1..=16"
        );
        AccumulatorBank {
            accum: vec![0; k],
            m_bits,
        }
    }

    /// Number of inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.accum.len()
    }

    /// Number of inverse-weight bits `M`.
    #[inline]
    pub fn m_bits(&self) -> u32 {
        self.m_bits
    }

    /// Maximum representable inverse weight, `2^M − 1`.
    #[inline]
    pub fn max_weight(&self) -> u32 {
        (1 << self.m_bits) - 1
    }

    /// The priority vector: bit `i` set when input `i` is high priority
    /// (accumulator MSB clear — lower half of the sliding window).
    pub fn priorities(&self) -> u32 {
        let msb = 1u32 << self.m_bits;
        let mut out = 0;
        for (i, &a) in self.accum.iter().enumerate() {
            if a & msb == 0 {
                out |= 1 << i;
            }
        }
        out
    }

    /// Priority (0 or 1) of one input.
    #[inline]
    pub fn priority(&self, input: usize) -> u8 {
        (self.priorities() >> input & 1) as u8
    }

    /// Current accumulator value of an input (relative to the window).
    #[inline]
    pub fn value(&self, input: usize) -> u32 {
        self.accum[input]
    }

    /// Applies one grant, mirroring Figure 6's `accum_nxt` equation:
    ///
    /// * the granted input's accumulator has its MSB cleared and the packet's
    ///   inverse weight added;
    /// * if the grant went to a low-priority input, the window shifts:
    ///   every other input's MSB is cleared, clamping high-priority inputs
    ///   (whose value would underflow) to zero;
    /// * otherwise other inputs are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `granted` is out of range or `inv_weight` exceeds `2^M − 1`.
    pub fn grant(&mut self, granted: usize, inv_weight: u32) {
        assert!(granted < self.accum.len(), "granted input out of range");
        assert!(
            inv_weight <= self.max_weight(),
            "inverse weight exceeds 2^M - 1"
        );
        let msb = 1u32 << self.m_bits;
        let low_grant = self.accum[granted] & msb != 0;
        for i in 0..self.accum.len() {
            let a = self.accum[i];
            let a_msb0 = a & (msb - 1);
            self.accum[i] = if i == granted {
                a_msb0 + inv_weight
            } else if low_grant {
                if a & msb == 0 {
                    // Underflow: high-priority non-granted input clamps to 0.
                    0
                } else {
                    a_msb0
                }
            } else {
                a
            };
            debug_assert!(self.accum[i] < 2 * msb, "accumulator overflow");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_bank_all_high_priority() {
        let bank = AccumulatorBank::new(6, 5);
        assert_eq!(bank.priorities(), 0b111111);
    }

    #[test]
    fn grant_accumulates_weight() {
        let mut bank = AccumulatorBank::new(2, 5);
        bank.grant(0, 10);
        assert_eq!(bank.value(0), 10);
        assert_eq!(bank.value(1), 0);
        bank.grant(0, 10);
        assert_eq!(bank.value(0), 20);
    }

    #[test]
    fn msb_drops_priority() {
        let mut bank = AccumulatorBank::new(2, 5);
        // Four grants of weight 10 push input 0 past 2^5 = 32.
        for _ in 0..4 {
            bank.grant(0, 10);
        }
        assert_eq!(bank.value(0), 40);
        assert_eq!(bank.priority(0), 0);
        assert_eq!(bank.priority(1), 1);
    }

    #[test]
    fn low_grant_shifts_window() {
        let mut bank = AccumulatorBank::new(2, 5);
        for _ in 0..4 {
            bank.grant(0, 10);
        }
        // Input 0 is low priority (value 40). Granting it again implies
        // input 1 was not requesting; the window shifts by 32.
        bank.grant(0, 10);
        // Granted input: MSB cleared (40 - 32 = 8) then + 10 = 18.
        assert_eq!(bank.value(0), 18);
        // Input 1 was high priority at 0: clamps to 0 (underflow case).
        assert_eq!(bank.value(1), 0);
    }

    #[test]
    fn window_shift_preserves_low_priority_values() {
        let mut bank = AccumulatorBank::new(3, 5);
        for _ in 0..4 {
            bank.grant(0, 10); // 40: low priority
        }
        for _ in 0..4 {
            bank.grant(1, 9); // 36: low priority
        }
        // All requesting inputs low priority; grant 0 shifts window.
        bank.grant(0, 10);
        assert_eq!(bank.value(0), 40 - 32 + 10);
        assert_eq!(bank.value(1), 36 - 32);
        assert_eq!(bank.value(2), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 2^M - 1")]
    fn oversized_weight_rejected() {
        let mut bank = AccumulatorBank::new(2, 5);
        bank.grant(0, 32);
    }

    proptest! {
        #[test]
        fn accumulators_stay_bounded(
            grants in proptest::collection::vec((0usize..4, 0u32..32), 0..200)
        ) {
            let mut bank = AccumulatorBank::new(4, 5);
            for (g, w) in grants {
                bank.grant(g, w);
                for i in 0..4 {
                    prop_assert!(bank.value(i) < 64, "accumulator {i} = {}", bank.value(i));
                }
            }
        }

        #[test]
        fn service_ratio_tracks_inverse_weights(w0 in 1u32..32, w1 in 1u32..32) {
            // Always-requesting inputs served by lowest-accumulator-first
            // (the ideal policy the hardware approximates) receive service
            // inversely proportional to their weights.
            let mut bank = AccumulatorBank::new(2, 5);
            let mut served = [0u64; 2];
            for _ in 0..10_000 {
                let pick = if bank.value(0) <= bank.value(1) { 0 } else { 1 };
                // Ideal policy compares raw values; emulate the window by
                // granting through the bank.
                bank.grant(pick, if pick == 0 { w0 } else { w1 });
                served[pick] += 1;
            }
            let expected = f64::from(w1) / f64::from(w0);
            let actual = served[0] as f64 / served[1] as f64;
            prop_assert!(
                (actual / expected - 1.0).abs() < 0.05,
                "service ratio {actual} vs expected {expected}"
            );
        }
    }
}
