//! The inverse-weighted arbiter (Section 3).
//!
//! Composes the accumulator bank of Figure 6 with the prioritized
//! round-robin arbiter of Figure 8. Each input stores one pre-computed
//! inverse weight per traffic pattern (`m[i][n] = nint(β / γ[i][n])`); when a
//! packet of pattern `n` is granted at input `i`, the input's accumulator is
//! charged `m[i][n]`. Inputs whose accumulator sits in the lower half of the
//! sliding window arbitrate at high priority, so service converges to being
//! proportional to each input's expected load — equality of service — for
//! any blend of the pre-characterized patterns.

use crate::accumulator::AccumulatorBank;
use crate::priority::{priority_arb_fast2, rr_therm_after_grant};
use crate::{ArbRequest, PortArbiter};

/// An inverse-weighted arbiter for one router output port.
///
/// # Examples
///
/// ```
/// use anton_arbiter::{ArbRequest, InverseWeightedArbiter, PortArbiter};
///
/// // Input 0 carries twice the load of input 1, so it gets half the weight.
/// let mut arb = InverseWeightedArbiter::new(vec![vec![10], vec![20]], 5);
/// let reqs = [
///     ArbRequest { input: 0, pattern: 0, age: 0 },
///     ArbRequest { input: 1, pattern: 0, age: 0 },
/// ];
/// let mut served = [0u32; 2];
/// for _ in 0..3000 {
///     let w = arb.pick(&reqs).unwrap();
///     served[reqs[w].input] += 1;
/// }
/// let ratio = f64::from(served[0]) / f64::from(served[1]);
/// assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
/// ```
#[derive(Debug, Clone)]
pub struct InverseWeightedArbiter {
    bank: AccumulatorBank,
    /// `weights[input][pattern]`.
    weights: Vec<Vec<u32>>,
    rr_therm: u32,
}

impl InverseWeightedArbiter {
    /// Creates an arbiter from per-input, per-pattern inverse weights with
    /// `M = m_bits` weight bits.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or ragged, if any weight exceeds
    /// `2^M − 1`, or if there are more than 32 inputs.
    pub fn new(weights: Vec<Vec<u32>>, m_bits: u32) -> InverseWeightedArbiter {
        let k = weights.len();
        assert!(k > 0 && k <= 32, "input count {k} out of range 1..=32");
        let patterns = weights[0].len();
        assert!(patterns > 0, "need at least one traffic pattern");
        let bank = AccumulatorBank::new(k, m_bits);
        for (i, w) in weights.iter().enumerate() {
            assert_eq!(w.len(), patterns, "ragged weights at input {i}");
            for (n, &m) in w.iter().enumerate() {
                assert!(
                    m <= bank.max_weight(),
                    "weight m[{i}][{n}] = {m} exceeds 2^M - 1 = {}",
                    bank.max_weight()
                );
            }
        }
        InverseWeightedArbiter {
            bank,
            weights,
            rr_therm: 0,
        }
    }

    /// An arbiter with all weights equal (uniform inverse weights): fair
    /// per-input service, matching a round-robin arbiter's long-run shares
    /// while exercising the full accumulator datapath.
    pub fn uniform(k: usize, m_bits: u32) -> InverseWeightedArbiter {
        let w = (1u32 << m_bits) / 2;
        InverseWeightedArbiter::new(vec![vec![w]; k], m_bits)
    }

    /// Number of traffic patterns the weights cover.
    pub fn num_patterns(&self) -> usize {
        self.weights[0].len()
    }

    /// The current accumulator value of an input (for tests and debugging).
    pub fn accumulator(&self, input: usize) -> u32 {
        self.bank.value(input)
    }
}

impl PortArbiter for InverseWeightedArbiter {
    fn num_inputs(&self) -> usize {
        self.bank.num_inputs()
    }

    fn pick(&mut self, reqs: &[ArbRequest]) -> Option<usize> {
        if reqs.is_empty() {
            return None;
        }
        let k = self.bank.num_inputs();
        let mut req_mask = 0u32;
        let mut pattern_of = [0u8; 32];
        for r in reqs {
            assert!(r.input < k, "request input {} out of range", r.input);
            assert!(
                req_mask >> r.input & 1 == 0,
                "duplicate request for input {}",
                r.input
            );
            req_mask |= 1 << r.input;
            pattern_of[r.input] = r.pattern;
        }
        let pris = self.bank.priorities();
        let winner = priority_arb_fast2(req_mask, pris, self.rr_therm)
            .expect("nonempty requests yield a grant");
        // An arbiter programmed with fewer patterns than the traffic labels
        // charges its last stored weight for unknown labels — a single-set
        // arbiter ignores pattern tags, as in Figure 10's "Forward"/
        // "Reverse" configurations.
        let pattern = (pattern_of[winner] as usize).min(self.num_patterns() - 1);
        self.bank.grant(winner, self.weights[winner][pattern]);
        self.rr_therm = rr_therm_after_grant(winner);
        reqs.iter().position(|r| r.input == winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(arb: &mut InverseWeightedArbiter, reqs: &[ArbRequest], iters: usize) -> Vec<u64> {
        let mut served = vec![0u64; arb.num_inputs()];
        for _ in 0..iters {
            let w = arb.pick(reqs).expect("requests present");
            served[reqs[w].input] += 1;
        }
        served
    }

    #[test]
    fn equal_weights_equal_service() {
        let mut arb = InverseWeightedArbiter::uniform(4, 5);
        let reqs: Vec<ArbRequest> = (0..4)
            .map(|i| ArbRequest {
                input: i,
                pattern: 0,
                age: 0,
            })
            .collect();
        let served = run(&mut arb, &reqs, 4000);
        for s in &served {
            assert!((*s as i64 - 1000).abs() <= 2, "served {served:?}");
        }
    }

    #[test]
    fn service_proportional_to_load() {
        // Figure 5's example: input 0 carries load 1.0, input 1 load 0.5, so
        // input 0 should be granted twice as often. Inverse weights 10 / 20.
        let mut arb = InverseWeightedArbiter::new(vec![vec![10], vec![20]], 5);
        let reqs: Vec<ArbRequest> = (0..2)
            .map(|i| ArbRequest {
                input: i,
                pattern: 0,
                age: 0,
            })
            .collect();
        let served = run(&mut arb, &reqs, 6000);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn blended_patterns_stay_proportional() {
        // Two patterns with different per-input loads. Pattern 0: loads
        // (1.0, 0.25); pattern 1: loads (0.25, 1.0). A 50/50 packet blend
        // should serve both inputs equally without the arbiter knowing the
        // mixing coefficients (Section 3.2).
        let w = |g: f64| (8.0 / g).round() as u32;
        let weights = vec![vec![w(1.0), w(0.25)], vec![w(0.25), w(1.0)]];
        let mut arb = InverseWeightedArbiter::new(weights, 6);
        // Input 0 requests alternate between patterns matching its load mix:
        // 80% pattern 0, 20% pattern 1 (loads 1.0 vs 0.25); input 1 mirrors.
        let mut served = [0u64; 2];
        for step in 0..10_000u64 {
            let p0 = u8::from(step % 5 == 0); // 20% pattern 1
            let p1 = u8::from(step % 5 != 0); // 80% pattern 1
            let reqs = [
                ArbRequest {
                    input: 0,
                    pattern: p0,
                    age: 0,
                },
                ArbRequest {
                    input: 1,
                    pattern: p1,
                    age: 0,
                },
            ];
            let w = arb.pick(&reqs).unwrap();
            served[reqs[w].input] += 1;
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 1.0).abs() < 0.05, "blended ratio {ratio}");
    }

    #[test]
    fn single_requester_always_wins() {
        let mut arb = InverseWeightedArbiter::uniform(6, 5);
        let req = [ArbRequest {
            input: 3,
            pattern: 0,
            age: 0,
        }];
        for _ in 0..100 {
            assert_eq!(arb.pick(&req), Some(0));
        }
    }

    #[test]
    fn empty_requests_yield_none() {
        let mut arb = InverseWeightedArbiter::uniform(4, 5);
        assert_eq!(arb.pick(&[]), None);
    }

    #[test]
    fn unknown_pattern_clamps_to_last_weight() {
        // A single-weight-set arbiter ignores pattern labels (Figure 10's
        // "Forward"/"Reverse" configurations run blended traffic through
        // single-pattern weights).
        let mut arb = InverseWeightedArbiter::new(vec![vec![10], vec![10]], 5);
        assert_eq!(
            arb.pick(&[ArbRequest {
                input: 0,
                pattern: 1,
                age: 0
            }]),
            Some(0)
        );
        assert_eq!(arb.accumulator(0), 10);
    }
}
