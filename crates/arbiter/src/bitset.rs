//! Branchless bitmask arbitration core.
//!
//! The simulator's grant sites (SA1, SA2/output, serializer) originally
//! dispatched through `Box<dyn PortArbiter>` and walked per-requestor
//! branches. The paper's arbiter is a Kogge-Stone parallel-prefix network —
//! data-parallel by construction — so this module evaluates it the same way
//! in software: requests live in `u64` lanes, level selection is a handful
//! of mask operations, and the grant is extracted with a prefix-OR smear
//! ([`ks_suffix_or`]) followed by an edge detect ([`msb_one_hot`]).
//!
//! [`BitsetArbiter`] packs all four [`ArbiterKind`] policies into one
//! monomorphic enum so the simulator can keep dense `Vec<BitsetArbiter>`
//! state arrays instead of boxed trait objects. The inverse-weighted policy
//! maintains the Figure 6 accumulator bank with its priority vector cached
//! incrementally, so the hot path never rescans the bank.
//!
//! The boxed arbiters of [`crate::baseline`] and [`crate::iwarb`] remain the
//! reference model; per-grant equivalence (winner *and* accumulator state)
//! is property-tested in `tests/bitset_equiv.rs`.

use crate::{ArbRequest, ArbiterKind, PortArbiter};

/// Maximum number of request lanes: one machine word.
pub const MAX_LANES: usize = 64;

/// Mask of the low `k` lanes.
#[inline]
pub fn lane_mask(k: u32) -> u64 {
    debug_assert!((1..=MAX_LANES as u32).contains(&k));
    if k == 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Kogge-Stone suffix OR: bit `i` of the result is the OR of bits `i..64`
/// of `x`. Six fixed stages — the software image of the paper's
/// `⌈log₂(K−1)⌉`-deep parallel-prefix network, saturated to a full word.
#[inline]
pub fn ks_suffix_or(x: u64) -> u64 {
    let mut s = x;
    s |= s >> 1;
    s |= s >> 2;
    s |= s >> 4;
    s |= s >> 8;
    s |= s >> 16;
    s |= s >> 32;
    s
}

/// One-hot mask of the most-significant set bit of `x` (zero when `x` is
/// zero): prefix-OR smear then edge detect, `grant = flat & !higher` in the
/// RTL's terms.
#[inline]
pub fn msb_one_hot(x: u64) -> u64 {
    let s = ks_suffix_or(x);
    s & !(s >> 1)
}

/// Branchless single-priority-level request selection: requests boosted by
/// the round-robin thermometer win over bare requests. Semantically the
/// 64-lane image of [`crate::priority::priority_arb_fast1`]'s level pick.
#[inline]
pub fn level_select1(req: u64, rr_therm: u64) -> u64 {
    let boosted = req & rr_therm;
    let m = ((boosted != 0) as u64).wrapping_neg();
    (boosted & m) | (req & !m)
}

/// Branchless two-priority-level request selection (the paper's `P = 2`):
/// level 2 is priority *and* round-robin boost, level 1 is either, level 0
/// is a bare request. Returns the surviving request set of the highest
/// non-empty level. 64-lane image of
/// [`crate::priority::priority_arb_fast2`]'s level pick.
#[inline]
pub fn level_select2(req: u64, pri: u64, rr_therm: u64) -> u64 {
    let l2 = req & pri & rr_therm;
    let l1 = req & (pri | rr_therm);
    let m2 = ((l2 != 0) as u64).wrapping_neg();
    let m1 = ((l1 != 0) as u64).wrapping_neg();
    (l2 & m2) | (l1 & !m2 & m1) | (req & !m1)
}

/// 64-lane constant-time evaluation of the two-level prioritized
/// round-robin arbiter: semantically identical to
/// [`crate::priority::priority_arb_fast2`] but over `u64` lanes, with the
/// winner extracted by Kogge-Stone prefix-OR instead of a count-leading-
/// zeros instruction. Equivalence against [`priority_arb_spec64`] is
/// property-tested.
#[inline]
pub fn priority_arb_fast2_64(req: u64, pri: u64, rr_therm: u64) -> Option<u32> {
    if req == 0 {
        return None;
    }
    Some(msb_one_hot(level_select2(req, pri, rr_therm)).trailing_zeros())
}

/// 64-lane round-robin thermometer update: after granting lane `g`, the
/// prefix mask `[0, g)` boosts exactly the lanes below the winner.
#[inline]
pub fn rr_therm_after_grant64(granted: u32) -> u64 {
    debug_assert!((granted as usize) < MAX_LANES);
    (1u64 << granted) - 1
}

/// The inverse-weighted policy's lane state: the Figure 6 accumulator bank
/// with its priority vector (`accum MSB clear` per lane) cached as a mask
/// and maintained incrementally on every grant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IwLanes {
    /// `M`, the number of inverse-weight bits.
    m_bits: u32,
    /// Patterns per input in the flattened weight table.
    npatterns: u32,
    /// Bit `i` set when lane `i` is high priority (accumulator MSB clear).
    pri_mask: u64,
    /// `(M+1)`-bit accumulators, one per lane.
    accum: Vec<u32>,
    /// `weights[input * npatterns + pattern]`.
    weights: Vec<u32>,
}

impl IwLanes {
    /// Applies one grant, mirroring `AccumulatorBank::grant` (Figure 6's
    /// `accum_nxt`), and folds the priority-vector change into `pri_mask`
    /// so [`BitsetArbiter::pick_mask`] never rescans the bank:
    ///
    /// * high-priority grant — only the winner's lane can change priority;
    /// * low-priority grant — the window shifts, every other lane's MSB
    ///   clears (all go high priority), and only the winner may stay low.
    fn apply_grant(&mut self, winner: u32, inv_weight: u32, k: u32) {
        let msb = 1u32 << self.m_bits;
        debug_assert!(inv_weight < msb, "inverse weight exceeds 2^M - 1");
        let wi = winner as usize;
        let low_grant = self.accum[wi] & msb != 0;
        if low_grant {
            for (i, a) in self.accum.iter_mut().enumerate() {
                let clipped = *a & (msb - 1);
                *a = if i == wi {
                    clipped + inv_weight
                } else if *a & msb == 0 {
                    // Underflow: high-priority non-granted lane clamps to 0.
                    0
                } else {
                    clipped
                };
            }
            self.pri_mask = lane_mask(k);
            if self.accum[wi] & msb != 0 {
                self.pri_mask &= !(1u64 << winner);
            }
        } else {
            let v = self.accum[wi] + inv_weight;
            self.accum[wi] = v;
            if v & msb != 0 {
                self.pri_mask &= !(1u64 << winner);
            }
        }
        debug_assert!(self.accum[wi] < 2 * msb, "accumulator overflow");
    }
}

/// Which selection rule a [`BitsetArbiter`] applies. One variant per
/// [`ArbiterKind`], monomorphic so the simulator's grant loops compile to a
/// jump table over dense state instead of virtual dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Policy {
    /// Single-level round-robin ([`crate::baseline::RoundRobinArbiter`]).
    RoundRobin,
    /// Fixed msb-first ([`crate::baseline::FixedPriorityArbiter`]).
    FixedPriority,
    /// Oldest packet first ([`crate::baseline::AgeArbiter`]).
    Age,
    /// Two-level prioritized round-robin over the Figure 6 accumulator
    /// bank ([`crate::iwarb::InverseWeightedArbiter`]). Boxed: the lane
    /// state is ~3 words of header plus heap vectors, and the other
    /// policies should stay pointer-sized.
    InverseWeighted(Box<IwLanes>),
}

/// A monomorphic bitmask arbiter: any [`ArbiterKind`] policy over up to 64
/// request lanes, picked branchlessly from a `u64` request mask.
///
/// The hot-path entry point is [`BitsetArbiter::pick_mask`], which takes the
/// request set as a bitmask plus lazy per-lane attribute closures (pattern
/// tag, age) so callers never build request arrays. The [`PortArbiter`]
/// implementation adapts the slice interface for tests and benchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitsetArbiter {
    k: u32,
    rr_therm: u64,
    policy: Policy,
}

impl BitsetArbiter {
    fn with_policy(k: usize, policy: Policy) -> BitsetArbiter {
        assert!(
            (1..=MAX_LANES).contains(&k),
            "input count {k} out of range 1..={MAX_LANES}"
        );
        BitsetArbiter {
            k: k as u32,
            rr_therm: 0,
            policy,
        }
    }

    /// A plain round-robin arbiter over `k` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds 64.
    pub fn round_robin(k: usize) -> BitsetArbiter {
        Self::with_policy(k, Policy::RoundRobin)
    }

    /// A fixed msb-first priority arbiter over `k` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds 64.
    pub fn fixed_priority(k: usize) -> BitsetArbiter {
        Self::with_policy(k, Policy::FixedPriority)
    }

    /// An age-based arbiter over `k` lanes (oldest packet wins, ties break
    /// toward the lowest lane).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds 64.
    pub fn age(k: usize) -> BitsetArbiter {
        Self::with_policy(k, Policy::Age)
    }

    /// An inverse-weighted arbiter from per-input, per-pattern inverse
    /// weights with `M = m_bits` weight bits. Mirrors
    /// [`crate::InverseWeightedArbiter::new`] up to the 64-lane limit.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, ragged, or longer than 64 inputs, if
    /// `m_bits` is outside `1..=16`, or if any weight exceeds `2^M − 1`.
    pub fn inverse_weighted(weights: Vec<Vec<u32>>, m_bits: u32) -> BitsetArbiter {
        let k = weights.len();
        assert!(
            (1..=MAX_LANES).contains(&k),
            "input count {k} out of range 1..={MAX_LANES}"
        );
        assert!(
            (1..=16).contains(&m_bits),
            "m_bits={m_bits} out of range 1..=16"
        );
        let npatterns = weights[0].len();
        assert!(npatterns > 0, "need at least one traffic pattern");
        let max_weight = (1u32 << m_bits) - 1;
        let mut flat = Vec::with_capacity(k * npatterns);
        for (i, w) in weights.iter().enumerate() {
            assert_eq!(w.len(), npatterns, "ragged weights at input {i}");
            for (n, &m) in w.iter().enumerate() {
                assert!(
                    m <= max_weight,
                    "weight m[{i}][{n}] = {m} exceeds 2^M - 1 = {max_weight}"
                );
            }
            flat.extend_from_slice(w);
        }
        Self::with_policy(
            k,
            Policy::InverseWeighted(Box::new(IwLanes {
                m_bits,
                npatterns: npatterns as u32,
                pri_mask: lane_mask(k as u32),
                accum: vec![0; k],
                weights: flat,
            })),
        )
    }

    /// An inverse-weighted arbiter with all weights equal (`2^M / 2`),
    /// matching [`crate::InverseWeightedArbiter::uniform`].
    pub fn uniform_iw(k: usize, m_bits: u32) -> BitsetArbiter {
        let w = (1u32 << m_bits) / 2;
        Self::inverse_weighted(vec![vec![w]; k], m_bits)
    }

    /// Instantiates the policy an [`ArbiterKind`] names over `k` lanes,
    /// mirroring the simulator's construction defaults (inverse-weighted
    /// starts from uniform weights until a weight program is installed).
    pub fn from_kind(kind: &ArbiterKind, k: usize) -> BitsetArbiter {
        match kind {
            ArbiterKind::RoundRobin => Self::round_robin(k),
            ArbiterKind::InverseWeighted { m_bits } => Self::uniform_iw(k, *m_bits),
            ArbiterKind::Age => Self::age(k),
            ArbiterKind::FixedPriority => Self::fixed_priority(k),
        }
    }

    /// Number of request lanes.
    #[inline]
    pub fn num_lanes(&self) -> usize {
        self.k as usize
    }

    /// The current accumulator value of a lane. Zero for policies without
    /// an accumulator bank (for tests and debugging).
    pub fn accumulator(&self, input: usize) -> u32 {
        assert!(input < self.k as usize, "input out of range");
        match &self.policy {
            Policy::InverseWeighted(iw) => iw.accum[input],
            _ => 0,
        }
    }

    /// The cached high-priority lane mask (all lanes for policies without
    /// an accumulator bank).
    pub fn priorities(&self) -> u64 {
        match &self.policy {
            Policy::InverseWeighted(iw) => iw.pri_mask,
            _ => lane_mask(self.k),
        }
    }

    /// Grants one lane of `req`, committing the policy state, or `None`
    /// when `req` is empty (state untouched).
    ///
    /// `pattern_of` and `age_of` supply per-lane request attributes lazily:
    /// they are invoked at most once, for the winning lane only (`age_of`
    /// once per requesting lane under the age policy). Policies that ignore
    /// an attribute never call its closure, so round-robin monomorphizes to
    /// pure mask arithmetic.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `req` stays within the arbiter's lanes.
    #[inline]
    pub fn pick_mask<P, A>(&mut self, req: u64, pattern_of: P, age_of: A) -> Option<u32>
    where
        P: Fn(u32) -> u8,
        A: Fn(u32) -> u64,
    {
        debug_assert_eq!(req & !lane_mask(self.k), 0, "request bits beyond k");
        if req == 0 {
            return None;
        }
        match &mut self.policy {
            Policy::RoundRobin => {
                let winner = msb_one_hot(level_select1(req, self.rr_therm)).trailing_zeros();
                self.rr_therm = rr_therm_after_grant64(winner);
                Some(winner)
            }
            Policy::FixedPriority => Some(msb_one_hot(req).trailing_zeros()),
            Policy::Age => {
                let mut rest = req;
                let mut best_lane = rest.trailing_zeros();
                let mut best_age = age_of(best_lane);
                rest &= rest - 1;
                while rest != 0 {
                    let lane = rest.trailing_zeros();
                    rest &= rest - 1;
                    let age = age_of(lane);
                    // Ascending lanes with a strict compare: ties break
                    // toward the lowest lane, as in `AgeArbiter`.
                    if age < best_age {
                        best_age = age;
                        best_lane = lane;
                    }
                }
                Some(best_lane)
            }
            Policy::InverseWeighted(iw) => {
                let winner =
                    msb_one_hot(level_select2(req, iw.pri_mask, self.rr_therm)).trailing_zeros();
                // Unknown pattern labels charge the last stored weight, as
                // in `InverseWeightedArbiter::pick`.
                let pattern = (pattern_of(winner) as u32).min(iw.npatterns - 1);
                let inv_weight = iw.weights[(winner * iw.npatterns + pattern) as usize];
                iw.apply_grant(winner, inv_weight, self.k);
                self.rr_therm = rr_therm_after_grant64(winner);
                Some(winner)
            }
        }
    }
}

impl PortArbiter for BitsetArbiter {
    fn num_inputs(&self) -> usize {
        self.k as usize
    }

    fn pick(&mut self, reqs: &[ArbRequest]) -> Option<usize> {
        if reqs.is_empty() {
            return None;
        }
        let mut req = 0u64;
        let mut pattern = [0u8; MAX_LANES];
        let mut age = [0u64; MAX_LANES];
        for r in reqs {
            assert!(
                r.input < self.k as usize,
                "request input {} out of range",
                r.input
            );
            assert!(
                req >> r.input & 1 == 0,
                "duplicate request for input {}",
                r.input
            );
            req |= 1 << r.input;
            pattern[r.input] = r.pattern;
            age[r.input] = r.age;
        }
        let winner = self.pick_mask(req, |i| pattern[i as usize], |i| age[i as usize])? as usize;
        reqs.iter().position(|r| r.input == winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::priority_arb_spec64;

    #[test]
    fn suffix_or_smears_down() {
        assert_eq!(ks_suffix_or(0), 0);
        assert_eq!(ks_suffix_or(0b1000), 0b1111);
        assert_eq!(ks_suffix_or(1u64 << 63), u64::MAX);
        assert_eq!(ks_suffix_or(0b10100), 0b11111);
    }

    #[test]
    fn msb_extraction_matches_leading_zeros() {
        for x in [0u64, 1, 2, 3, 0b1010, u64::MAX, 1 << 63, (1 << 63) | 1] {
            let expect = if x == 0 {
                0
            } else {
                1u64 << (63 - x.leading_zeros())
            };
            assert_eq!(msb_one_hot(x), expect, "x = {x:#b}");
        }
    }

    #[test]
    fn fast2_64_matches_spec_on_edges() {
        for (req, pri, therm) in [
            (0u64, 0u64, 0u64),
            (1, 0, 0),
            (u64::MAX, 0, 0),
            (u64::MAX, u64::MAX, u64::MAX),
            (0b1010, 0b0010, 0b0011),
            (1 << 63 | 1, 1, 0),
        ] {
            assert_eq!(
                priority_arb_fast2_64(req, pri, therm).map(|w| w as usize),
                priority_arb_spec64(req, pri, therm),
                "req={req:#b} pri={pri:#b} therm={therm:#b}"
            );
        }
    }

    #[test]
    fn empty_mask_yields_none_and_keeps_state() {
        let mut arb = BitsetArbiter::round_robin(4);
        arb.pick_mask(0b0110, |_| 0, |_| 0);
        let before = arb.clone();
        assert_eq!(arb.pick_mask(0, |_| 0, |_| 0), None);
        assert_eq!(arb, before);
    }

    #[test]
    fn round_robin_walks_all_lanes() {
        let mut arb = BitsetArbiter::round_robin(6);
        let mut served = Vec::new();
        for _ in 0..6 {
            served.push(arb.pick_mask(0b111111, |_| 0, |_| 0).unwrap());
        }
        served.sort_unstable();
        assert_eq!(served, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn age_prefers_oldest_with_low_lane_ties() {
        let mut arb = BitsetArbiter::age(8);
        let ages = [90u64, 0, 10, 0, 10, 0, 0, 50];
        assert_eq!(
            arb.pick_mask(0b1001_0101, |_| 0, |i| ages[i as usize]),
            Some(2)
        );
    }

    #[test]
    fn fixed_priority_picks_msb() {
        let mut arb = BitsetArbiter::fixed_priority(64);
        assert_eq!(arb.pick_mask(1 << 63 | 0b111, |_| 0, |_| 0), Some(63));
    }

    #[test]
    fn lanes_33_to_64_are_usable() {
        let mut arb = BitsetArbiter::round_robin(64);
        assert_eq!(arb.pick_mask(1u64 << 40, |_| 0, |_| 0), Some(40));
        // Thermometer now boosts lanes below 40; lane 10 beats lane 50.
        assert_eq!(arb.pick_mask(1 << 50 | 1 << 10, |_| 0, |_| 0), Some(10));
    }

    #[test]
    fn iw_single_lane_accumulates_weight() {
        let mut arb = BitsetArbiter::inverse_weighted(vec![vec![10], vec![10]], 5);
        assert_eq!(arb.pick_mask(0b01, |_| 0, |_| 0), Some(0));
        assert_eq!(arb.accumulator(0), 10);
        assert_eq!(arb.accumulator(1), 0);
    }

    #[test]
    fn iw_unknown_pattern_clamps_to_last_weight() {
        let mut arb = BitsetArbiter::inverse_weighted(vec![vec![7]], 5);
        assert_eq!(arb.pick_mask(1, |_| 9, |_| 0), Some(0));
        assert_eq!(arb.accumulator(0), 7);
    }

    #[test]
    #[should_panic(expected = "duplicate request")]
    fn trait_adapter_rejects_duplicates() {
        let mut arb = BitsetArbiter::round_robin(4);
        let r = ArbRequest {
            input: 2,
            pattern: 0,
            age: 0,
        };
        arb.pick(&[r, r]);
    }
}
