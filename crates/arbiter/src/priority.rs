//! The prioritized round-robin arbiter of Figure 8.
//!
//! The paper's `priority_arb` module arbitrates among `K` requests with `P`
//! priority levels and round-robin tie-breaking. The round-robin state is
//! *thermometer encoded*: `rr_therm` is a prefix mask (if bit `i` is set, so
//! is bit `i−1`). Each request is unrolled into `P+1` request vectors — one
//! per effective priority level — that are themselves thermometer encoded
//! across levels, which bounds the parallel-prefix (Kogge-Stone) network
//! depth to `⌈log₂(K−1)⌉` stages.
//!
//! [`priority_arb_rtl`] is a bit-for-bit translation of the SystemVerilog;
//! [`priority_arb_spec`] is the mathematical specification (grant the request
//! with the maximum unrolled bit position). Property tests assert they agree.

/// Maximum number of inputs supported by the bit-accurate implementation.
pub const MAX_K: usize = 32;

/// Maximum number of priority levels supported.
pub const MAX_P: usize = 3;

/// Bit-for-bit translation of the paper's `priority_arb` SystemVerilog
/// (Figure 8).
///
/// * `req` — request bit per input.
/// * `pri` — priority level (0..P) per input; only the low `⌈log₂P+1⌉` bits
///   are meaningful.
/// * `rr_therm` — thermometer-encoded round-robin state (prefix mask).
/// * `k` — number of inputs.
/// * `p` — number of priority levels (the paper uses `P = 2`).
///
/// Returns the one-hot grant vector (zero when nothing requests).
///
/// # Panics
///
/// Panics if `k` or `p` exceed the supported maxima, if `rr_therm` is not a
/// prefix mask, or if a priority value is `>= p`.
pub fn priority_arb_rtl(req: u32, pri: &[u8], rr_therm: u32, k: usize, p: usize) -> u32 {
    assert!((1..=MAX_K).contains(&k), "k={k} out of range 1..={MAX_K}");
    assert!((1..=MAX_P).contains(&p), "p={p} out of range 1..={MAX_P}");
    assert!(pri.len() == k, "pri must have k entries");
    let mask = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
    assert_eq!(req & !mask, 0, "request bits beyond k");
    let therm = rr_therm & mask;
    assert!(
        (therm.wrapping_add(1) & therm) == 0,
        "rr_therm must be a prefix mask"
    );
    for &pv in pri {
        assert!((pv as usize) < p, "priority {pv} out of range 0..{p}");
    }

    // req_unroll[p][i] = req[i] && ({pri[i], rr_therm[i]} >= 2p - 1)
    let mut flat: u128 = 0;
    for level in 0..=p {
        for (i, &pv) in pri.iter().enumerate().take(k) {
            let bit = if level == 0 {
                req >> i & 1 == 1
            } else {
                let key = 2 * pv as usize + ((therm >> i) & 1) as usize;
                (req >> i & 1 == 1) && key >= 2 * level - 1
            };
            if bit {
                flat |= 1u128 << (level * k + i);
            }
        }
    }

    // Kogge-Stone parallel prefix OR, depth clog2(k-1), exactly as in the RTL.
    let mut higher: u128 = flat >> 1;
    let stages = clog2(k.saturating_sub(1).max(1));
    for s in 0..stages {
        higher |= higher >> (1usize << s);
    }
    let grant_unroll = flat & !higher;

    // Fold the unrolled grants down to level 0.
    let mut folded = grant_unroll;
    let fold_stages = clog2(p + 1);
    for s in 0..fold_stages {
        folded |= folded >> (k << s);
    }
    (folded as u32) & mask
}

/// Mathematical specification of [`priority_arb_rtl`]: grant the requesting
/// input with the maximum `(effective level, index)` pair, where the
/// effective level of input `i` is the highest unrolled level it qualifies
/// for (0 for a bare request, +1 past each `2p−1` threshold of
/// `2·pri + rr_therm`).
///
/// Returns the granted input index, or `None` when nothing requests.
pub fn priority_arb_spec(req: u32, pri: &[u8], rr_therm: u32, k: usize, p: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, &pv) in pri.iter().enumerate().take(k) {
        if req >> i & 1 == 0 {
            continue;
        }
        let key = 2 * pv as usize + ((rr_therm >> i) & 1) as usize;
        // Highest level with key >= 2*level - 1, capped at p.
        let level = key.div_ceil(2).min(p);
        if best.is_none_or(|(bl, bi)| (level, i) > (bl, bi)) {
            best = Some((level, i));
        }
    }
    best.map(|(_, i)| i)
}

/// 64-lane mathematical specification of the two-priority-level arbiter
/// (`p = 2`) with priorities given as a bitmask instead of a level slice:
/// grant the requesting lane with the maximum `(effective level, index)`
/// pair. Reference model for [`crate::bitset::priority_arb_fast2_64`].
pub fn priority_arb_spec64(req: u64, pri: u64, rr_therm: u64) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for i in 0..64 {
        if req >> i & 1 == 0 {
            continue;
        }
        let key = 2 * (pri >> i & 1) as usize + (rr_therm >> i & 1) as usize;
        let level = key.div_ceil(2).min(2);
        if best.is_none_or(|(bl, bi)| (level, i) > (bl, bi)) {
            best = Some((level, i));
        }
    }
    best.map(|(_, i)| i)
}

/// Constant-time evaluation of the two-priority-level arbiter: semantically
/// identical to [`priority_arb_rtl`] with `p = 2` but using machine bit
/// operations instead of the unrolled-vector construction. Used on the
/// simulator's hot path; equivalence is property-tested.
#[inline]
pub fn priority_arb_fast2(req: u32, pri_mask: u32, rr_therm: u32) -> Option<usize> {
    if req == 0 {
        return None;
    }
    // Level 2: priority 1 with the round-robin boost; level 1: priority 1
    // or boost; level 0: bare requests. Highest level wins, msb-first.
    let l2 = req & pri_mask & rr_therm;
    let l1 = req & (pri_mask | rr_therm);
    let pick = if l2 != 0 {
        l2
    } else if l1 != 0 {
        l1
    } else {
        req
    };
    Some((31 - pick.leading_zeros()) as usize)
}

/// Constant-time evaluation of the single-level round-robin arbiter:
/// semantically identical to [`priority_arb_rtl`] with `p = 1`.
#[inline]
pub fn priority_arb_fast1(req: u32, rr_therm: u32) -> Option<usize> {
    if req == 0 {
        return None;
    }
    let boosted = req & rr_therm;
    let pick = if boosted != 0 { boosted } else { req };
    Some((31 - pick.leading_zeros()) as usize)
}

/// `⌈log₂(x)⌉` for `x ≥ 1` (SystemVerilog `$clog2`).
pub fn clog2(x: usize) -> usize {
    assert!(x >= 1);
    (usize::BITS - (x - 1).leading_zeros()) as usize
}

/// Round-robin thermometer state helper.
///
/// After granting input `g`, the next-highest round-robin preference is
/// `g−1` descending (with wrap): the prefix mask `[0, g)` boosts exactly
/// those inputs.
pub fn rr_therm_after_grant(granted: usize) -> u32 {
    if granted == 0 {
        0
    } else {
        (1u32 << granted) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn one_hot_index(grant: u32) -> Option<usize> {
        match grant.count_ones() {
            0 => None,
            1 => Some(grant.trailing_zeros() as usize),
            n => panic!("grant not one-hot: {grant:b} ({n} bits)"),
        }
    }

    #[test]
    fn clog2_matches_systemverilog() {
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(4), 2);
        assert_eq!(clog2(5), 3);
        assert_eq!(clog2(8), 3);
        assert_eq!(clog2(9), 4);
    }

    #[test]
    fn no_request_no_grant() {
        assert_eq!(priority_arb_rtl(0, &[0, 0, 0, 0], 0, 4, 2), 0);
        assert_eq!(priority_arb_spec(0, &[0, 0, 0, 0], 0, 4, 2), None);
    }

    #[test]
    fn high_priority_wins() {
        // Input 0 at priority 1, input 3 at priority 0: input 0 wins even
        // though msb-first would favor 3.
        let grant = priority_arb_rtl(0b1001, &[1, 0, 0, 0], 0, 4, 2);
        assert_eq!(one_hot_index(grant), Some(0));
    }

    #[test]
    fn rr_therm_breaks_ties() {
        // Equal priority; inputs 1 and 3 request. Prefix mask [0,2) boosts
        // input 1 over input 3.
        let grant = priority_arb_rtl(0b1010, &[0, 0, 0, 0], 0b0011, 4, 2);
        assert_eq!(one_hot_index(grant), Some(1));
        // No boost: msb-first picks 3.
        let grant = priority_arb_rtl(0b1010, &[0, 0, 0, 0], 0, 4, 2);
        assert_eq!(one_hot_index(grant), Some(3));
    }

    #[test]
    fn priority_dominates_rr_boost() {
        // Input 1 boosted by RR at priority 0; input 3 at priority 1 without
        // boost. Priority must dominate (the Figure 7 middle-level merge
        // keeps them ordered because the sets are index-disjoint).
        let grant = priority_arb_rtl(0b1010, &[0, 0, 0, 1], 0b0011, 4, 2);
        assert_eq!(one_hot_index(grant), Some(3));
    }

    #[test]
    fn rr_walks_all_inputs() {
        // With all inputs requesting at equal priority, repeatedly granting
        // and updating the thermometer serves every input once per K grants.
        let k = 6;
        let req = 0b111111u32;
        let pri = vec![0u8; k];
        let mut therm = 0u32;
        let mut served = Vec::new();
        for _ in 0..k {
            let g = one_hot_index(priority_arb_rtl(req, &pri, therm, k, 2)).unwrap();
            served.push(g);
            therm = rr_therm_after_grant(g);
        }
        served.sort_unstable();
        assert_eq!(served, (0..k).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "prefix mask")]
    fn non_prefix_therm_rejected() {
        priority_arb_rtl(0b1, &[0, 0, 0, 0], 0b0100, 4, 2);
    }

    proptest! {
        #[test]
        fn rtl_matches_spec(
            k in 1usize..=8,
            p in 1usize..=3,
            req_raw in any::<u32>(),
            pri_raw in any::<u32>(),
            therm_len in 0usize..=8,
        ) {
            let mask = (1u32 << k) - 1;
            let req = req_raw & mask;
            let pri: Vec<u8> = (0..k).map(|i| ((pri_raw >> (2 * i)) & 3) as u8 % p as u8).collect();
            let therm = if therm_len == 0 { 0 } else { (1u32 << therm_len.min(k)) - 1 };
            let grant = priority_arb_rtl(req, &pri, therm, k, p);
            let spec = priority_arb_spec(req, &pri, therm, k, p);
            prop_assert_eq!(one_hot_index(grant), spec);
            // Grant is always a subset of requests.
            prop_assert_eq!(grant & !req, 0);
            // The constant-time fast paths agree with the RTL.
            if p == 1 {
                prop_assert_eq!(priority_arb_fast1(req, therm), spec);
            }
            if p == 2 {
                let pri_mask = pri
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == 1)
                    .fold(0u32, |m, (i, _)| m | 1 << i);
                prop_assert_eq!(priority_arb_fast2(req, pri_mask, therm), spec);
            }
        }

        #[test]
        fn six_port_router_case(req_raw in any::<u32>(), pri_raw in any::<u32>(), g in 0usize..6) {
            // The Anton 2 router's arbiters are 6-input, P=2.
            let k = 6;
            let mask = (1u32 << k) - 1;
            let req = req_raw & mask;
            let pri: Vec<u8> = (0..k).map(|i| ((pri_raw >> i) & 1) as u8).collect();
            let therm = rr_therm_after_grant(g);
            let grant = priority_arb_rtl(req, &pri, therm, k, 2);
            prop_assert_eq!(one_hot_index(grant), priority_arb_spec(req, &pri, therm, k, 2));
        }
    }
}
