//! Baseline arbiters the paper compares against.
//!
//! * [`RoundRobinArbiter`] — the locally fair arbiter that causes the
//!   throughput collapse beyond saturation in Figure 9's gray curves.
//! * [`AgeArbiter`] — age-based arbitration [Abts & Weisser, SC'07], the
//!   heavyweight equality-of-service scheme the paper deemed too expensive
//!   for an on-chip router.
//! * [`FixedPriorityArbiter`] — a pathologically unfair msb-first arbiter,
//!   useful as a negative control in fairness experiments.

use crate::priority::{priority_arb_fast1, rr_therm_after_grant};
use crate::{ArbRequest, PortArbiter};

/// A plain round-robin arbiter (single priority level).
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    k: usize,
    rr_therm: u32,
}

impl RoundRobinArbiter {
    /// Creates a round-robin arbiter over `k` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds 32.
    pub fn new(k: usize) -> RoundRobinArbiter {
        assert!(k > 0 && k <= 32, "input count {k} out of range 1..=32");
        RoundRobinArbiter { k, rr_therm: 0 }
    }
}

impl PortArbiter for RoundRobinArbiter {
    fn num_inputs(&self) -> usize {
        self.k
    }

    fn pick(&mut self, reqs: &[ArbRequest]) -> Option<usize> {
        if reqs.is_empty() {
            return None;
        }
        let mut req_mask = 0u32;
        for r in reqs {
            assert!(r.input < self.k, "request input {} out of range", r.input);
            req_mask |= 1 << r.input;
        }
        let winner =
            priority_arb_fast1(req_mask, self.rr_therm).expect("nonempty requests yield a grant");
        self.rr_therm = rr_therm_after_grant(winner);
        reqs.iter().position(|r| r.input == winner)
    }
}

/// Age-based arbitration: the oldest packet wins (ties break toward the
/// lowest input index).
#[derive(Debug, Clone)]
pub struct AgeArbiter {
    k: usize,
}

impl AgeArbiter {
    /// Creates an age-based arbiter over `k` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> AgeArbiter {
        assert!(k > 0, "input count must be positive");
        AgeArbiter { k }
    }
}

impl PortArbiter for AgeArbiter {
    fn num_inputs(&self) -> usize {
        self.k
    }

    fn pick(&mut self, reqs: &[ArbRequest]) -> Option<usize> {
        reqs.iter()
            .enumerate()
            .min_by_key(|(_, r)| (r.age, r.input))
            .map(|(idx, _)| idx)
    }
}

/// Fixed msb-first priority: the highest requesting input always wins.
#[derive(Debug, Clone)]
pub struct FixedPriorityArbiter {
    k: usize,
}

impl FixedPriorityArbiter {
    /// Creates a fixed-priority arbiter over `k` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> FixedPriorityArbiter {
        assert!(k > 0, "input count must be positive");
        FixedPriorityArbiter { k }
    }
}

impl PortArbiter for FixedPriorityArbiter {
    fn num_inputs(&self) -> usize {
        self.k
    }

    fn pick(&mut self, reqs: &[ArbRequest]) -> Option<usize> {
        reqs.iter()
            .enumerate()
            .max_by_key(|(_, r)| r.input)
            .map(|(idx, _)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(inputs: &[usize]) -> Vec<ArbRequest> {
        inputs
            .iter()
            .map(|&i| ArbRequest {
                input: i,
                pattern: 0,
                age: i as u64,
            })
            .collect()
    }

    #[test]
    fn round_robin_is_fair() {
        let mut arb = RoundRobinArbiter::new(5);
        let rs = reqs(&[0, 1, 2, 3, 4]);
        let mut served = [0u32; 5];
        for _ in 0..500 {
            let w = arb.pick(&rs).unwrap();
            served[rs[w].input] += 1;
        }
        assert_eq!(served, [100; 5]);
    }

    #[test]
    fn round_robin_skips_idle_inputs() {
        let mut arb = RoundRobinArbiter::new(4);
        let rs = reqs(&[1, 3]);
        let mut served = [0u32; 4];
        for _ in 0..100 {
            let w = arb.pick(&rs).unwrap();
            served[rs[w].input] += 1;
        }
        assert_eq!(served, [0, 50, 0, 50]);
    }

    #[test]
    fn age_prefers_oldest() {
        let mut arb = AgeArbiter::new(4);
        let rs = vec![
            ArbRequest {
                input: 0,
                pattern: 0,
                age: 90,
            },
            ArbRequest {
                input: 2,
                pattern: 0,
                age: 10,
            },
            ArbRequest {
                input: 3,
                pattern: 0,
                age: 50,
            },
        ];
        assert_eq!(arb.pick(&rs), Some(1));
    }

    #[test]
    fn fixed_priority_starves_low_inputs() {
        let mut arb = FixedPriorityArbiter::new(4);
        let rs = reqs(&[0, 3]);
        for _ in 0..10 {
            assert_eq!(rs[arb.pick(&rs).unwrap()].input, 3);
        }
    }

    #[test]
    fn empty_requests() {
        assert_eq!(RoundRobinArbiter::new(3).pick(&[]), None);
        assert_eq!(AgeArbiter::new(3).pick(&[]), None);
        assert_eq!(FixedPriorityArbiter::new(3).pick(&[]), None);
    }
}
