//! # anton-arbiter
//!
//! RTL-faithful implementations of the Anton 2 network arbiters (Section 3
//! of *"Unifying on-chip and inter-node switching within the Anton 2
//! network"*, ISCA 2014):
//!
//! * [`priority`] — the prioritized round-robin arbiter of Figure 8,
//!   translated bit-for-bit from the paper's SystemVerilog (Kogge-Stone
//!   parallel prefix, thermometer-encoded round-robin state) plus its
//!   mathematical specification;
//! * [`accumulator`] — the sliding-window accumulator update of Figure 6;
//! * [`iwarb`] — the composed [`InverseWeightedArbiter`] providing equality
//!   of service over blends of pre-characterized traffic patterns;
//! * [`baseline`] — round-robin, age-based, and fixed-priority baselines;
//! * [`bitset`] — the branchless bitmask arbitration core the simulator's
//!   hot path uses: every policy over `u64` request lanes, property-tested
//!   per-grant-equivalent to the reference arbiters above.
//!
//! All arbiters implement [`PortArbiter`], the interface the simulator's
//! router output ports use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulator;
pub mod baseline;
pub mod bitset;
pub mod iwarb;
pub mod priority;

pub use accumulator::AccumulatorBank;
pub use baseline::{AgeArbiter, FixedPriorityArbiter, RoundRobinArbiter};
pub use bitset::BitsetArbiter;
pub use iwarb::InverseWeightedArbiter;

/// One arbitration request: a head packet waiting at an arbiter input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbRequest {
    /// Physical arbiter input (e.g. router input port index).
    pub input: usize,
    /// Traffic-pattern tag from the packet header (selects the inverse
    /// weight to charge).
    pub pattern: u8,
    /// Packet age (injection timestamp) for age-based arbitration.
    pub age: u64,
}

/// An arbiter for one output port: picks one winner per cycle among the
/// requesting inputs and commits its internal state to that grant.
///
/// Callers must only present requests that can actually proceed (credits
/// available), since `pick` commits the grant.
///
/// Arbiters are `Send`: each sharded-kernel worker thread owns the arbiters
/// of its partition's routers outright.
pub trait PortArbiter: std::fmt::Debug + Send {
    /// Number of physical inputs this arbiter serves.
    fn num_inputs(&self) -> usize;

    /// Grants one request, returning its index within `reqs`, or `None` when
    /// `reqs` is empty. At most one request per input may be presented.
    fn pick(&mut self, reqs: &[ArbRequest]) -> Option<usize>;
}

/// Where in the switching pipeline an arbitration grant was issued.
///
/// The simulator arbitrates at three structurally distinct places: the SA1
/// stage choosing among virtual channels on one input port, the SA2/output
/// stage choosing among input ports competing for one output, and the channel
/// adapter's serializer choosing which staged packet departs onto the torus.
/// Observability hooks tag each grant event with its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrantSite {
    /// Input-side VC selection (SA1).
    Sa1,
    /// Output-port allocation (SA2).
    Output,
    /// Channel-adapter serializer onto the torus link.
    Serializer,
}

impl GrantSite {
    /// All grant sites in a fixed order.
    pub const ALL: [GrantSite; 3] = [GrantSite::Sa1, GrantSite::Output, GrantSite::Serializer];

    /// Stable lowercase name, used in serialized traces.
    pub fn name(&self) -> &'static str {
        match self {
            GrantSite::Sa1 => "sa1",
            GrantSite::Output => "output",
            GrantSite::Serializer => "serializer",
        }
    }

    /// Inverse of [`GrantSite::name`].
    pub fn from_name(name: &str) -> Option<GrantSite> {
        GrantSite::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// Which arbiter implementation a simulation should instantiate at each
/// router output port.
#[derive(Debug, Clone, PartialEq)]
pub enum ArbiterKind {
    /// Plain round-robin (the paper's baseline).
    RoundRobin,
    /// Inverse-weighted with the given per-port weight tables; the outer map
    /// is keyed by an opaque port identifier assigned by the caller.
    InverseWeighted {
        /// `M`, the number of inverse-weight bits (the paper uses 5).
        m_bits: u32,
    },
    /// Age-based (oldest packet first).
    Age,
    /// Fixed msb-first priority (negative control).
    FixedPriority,
}
