//! The typed trace-event taxonomy recorded by the flight recorder.
//!
//! Each event carries the cycle it happened on, the component track it was
//! recorded against (a wire of the simulated machine), and — when the event
//! concerns a specific packet — the packet's dense id. Events serialize to
//! and parse from JSON so diagnostics like the deadlock report can round-trip
//! through `results/` files.

use anton_arbiter::GrantSite;

use crate::json::Json;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A packet entered the network at an endpoint adapter.
    Inject,
    /// A packet's head flit was launched onto a link.
    Hop {
        /// Virtual channel index occupied on the link.
        vc: u8,
        /// Packet length in flits (the link is busy this long).
        flits: u8,
    },
    /// A packet's torus virtual channel was promoted (dimension change or
    /// dateline crossing).
    VcPromotion {
        /// Torus VC before promotion.
        from: u8,
        /// Torus VC after promotion.
        to: u8,
    },
    /// An arbiter issued a grant.
    Grant {
        /// Which pipeline stage granted.
        site: GrantSite,
        /// How many requests competed.
        requests: u8,
        /// Winning input index (SA1: VC index; output/serializer: port).
        winner: u8,
    },
    /// The go-back-N link shim retransmitted a frame.
    Retransmit,
    /// The lossy link model dropped a frame.
    FrameDrop {
        /// `true` when the dropped frame was an acknowledgement.
        ack: bool,
    },
    /// A packet was delivered to its destination endpoint.
    Deliver,
    /// The deadlock watchdog found this component stalled.
    Stall {
        /// Cycles the simulator had gone without any flit movement.
        idle_cycles: u64,
    },
}

impl TraceEventKind {
    /// Stable lowercase name, used in serialized traces.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Inject => "inject",
            TraceEventKind::Hop { .. } => "hop",
            TraceEventKind::VcPromotion { .. } => "vc_promotion",
            TraceEventKind::Grant { .. } => "grant",
            TraceEventKind::Retransmit => "retransmit",
            TraceEventKind::FrameDrop { .. } => "frame_drop",
            TraceEventKind::Deliver => "deliver",
            TraceEventKind::Stall { .. } => "stall",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record sequence number (monotone across all tracks); merging
    /// rings by `seq` reconstructs exact recording order.
    pub seq: u64,
    /// Simulation cycle the event happened on.
    pub cycle: u64,
    /// Component track the event was recorded against.
    pub track: u32,
    /// Dense packet id, when the event concerns one packet.
    pub packet: Option<u64>,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Serializes the event (kind fields inline, `packet` null when absent).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seq".to_string(), Json::from(self.seq)),
            ("cycle".to_string(), Json::from(self.cycle)),
            ("track".to_string(), Json::from(u64::from(self.track))),
            (
                "packet".to_string(),
                self.packet.map_or(Json::Null, Json::from),
            ),
            ("kind".to_string(), Json::from(self.kind.name())),
        ];
        match self.kind {
            TraceEventKind::Hop { vc, flits } => {
                pairs.push(("vc".to_string(), Json::from(u64::from(vc))));
                pairs.push(("flits".to_string(), Json::from(u64::from(flits))));
            }
            TraceEventKind::VcPromotion { from, to } => {
                pairs.push(("from".to_string(), Json::from(u64::from(from))));
                pairs.push(("to".to_string(), Json::from(u64::from(to))));
            }
            TraceEventKind::Grant {
                site,
                requests,
                winner,
            } => {
                pairs.push(("site".to_string(), Json::from(site.name())));
                pairs.push(("requests".to_string(), Json::from(u64::from(requests))));
                pairs.push(("winner".to_string(), Json::from(u64::from(winner))));
            }
            TraceEventKind::FrameDrop { ack } => {
                pairs.push(("ack".to_string(), Json::from(ack)));
            }
            TraceEventKind::Stall { idle_cycles } => {
                pairs.push(("idle_cycles".to_string(), Json::from(idle_cycles)));
            }
            TraceEventKind::Inject | TraceEventKind::Retransmit | TraceEventKind::Deliver => {}
        }
        Json::Obj(pairs)
    }

    /// Inverse of [`TraceEvent::to_json`].
    pub fn from_json(j: &Json) -> Result<TraceEvent, String> {
        let field_u64 = |name: &str| {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace event missing '{name}'"))
        };
        let field_u8 = |name: &str| {
            field_u64(name).and_then(|v| {
                u8::try_from(v).map_err(|_| format!("trace event field '{name}' out of range"))
            })
        };
        let kind_name = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("trace event missing 'kind'")?;
        let kind = match kind_name {
            "inject" => TraceEventKind::Inject,
            "hop" => TraceEventKind::Hop {
                vc: field_u8("vc")?,
                flits: field_u8("flits")?,
            },
            "vc_promotion" => TraceEventKind::VcPromotion {
                from: field_u8("from")?,
                to: field_u8("to")?,
            },
            "grant" => TraceEventKind::Grant {
                site: j
                    .get("site")
                    .and_then(Json::as_str)
                    .and_then(GrantSite::from_name)
                    .ok_or("grant event has no valid 'site'")?,
                requests: field_u8("requests")?,
                winner: field_u8("winner")?,
            },
            "retransmit" => TraceEventKind::Retransmit,
            "frame_drop" => TraceEventKind::FrameDrop {
                ack: j
                    .get("ack")
                    .and_then(Json::as_bool)
                    .ok_or("frame_drop event has no 'ack'")?,
            },
            "deliver" => TraceEventKind::Deliver,
            "stall" => TraceEventKind::Stall {
                idle_cycles: field_u64("idle_cycles")?,
            },
            other => return Err(format!("unknown trace event kind '{other}'")),
        };
        let packet = match j.get("packet") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or("trace event 'packet' is not an integer")?),
        };
        Ok(TraceEvent {
            seq: field_u64("seq")?,
            cycle: field_u64("cycle")?,
            track: u32::try_from(field_u64("track")?)
                .map_err(|_| "trace event 'track' out of range".to_string())?,
            packet,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<TraceEventKind> {
        vec![
            TraceEventKind::Inject,
            TraceEventKind::Hop { vc: 3, flits: 9 },
            TraceEventKind::VcPromotion { from: 0, to: 1 },
            TraceEventKind::Grant {
                site: GrantSite::Sa1,
                requests: 4,
                winner: 2,
            },
            TraceEventKind::Grant {
                site: GrantSite::Serializer,
                requests: 1,
                winner: 0,
            },
            TraceEventKind::Retransmit,
            TraceEventKind::FrameDrop { ack: true },
            TraceEventKind::Deliver,
            TraceEventKind::Stall {
                idle_cycles: 50_000,
            },
        ]
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let ev = TraceEvent {
                seq: i as u64,
                cycle: 1000 + i as u64,
                track: 7,
                packet: if i % 2 == 0 { Some(42) } else { None },
                kind,
            };
            let j = ev.to_json();
            let text = j.to_pretty_string();
            let parsed = Json::parse(&text).unwrap();
            let back = TraceEvent::from_json(&parsed).unwrap();
            assert_eq!(back, ev, "kind {i} round-trips");
        }
    }

    #[test]
    fn from_json_rejects_unknown_kind() {
        let j = Json::obj([
            ("seq", Json::from(0u64)),
            ("cycle", Json::from(0u64)),
            ("track", Json::from(0u64)),
            ("packet", Json::Null),
            ("kind", Json::from("teleport")),
        ]);
        assert!(TraceEvent::from_json(&j).is_err());
    }
}
