//! Congestion analysis over a [`StallTable`](crate::stall::StallTable):
//! ranked hotspots, per-link-class totals, and root-blocker trees.
//!
//! The simulator snapshots its stall table into plain [`LinkStat`] records
//! (label and link class attached — this crate knows nothing about the
//! machine) and [`CongestionReport::build`] derives:
//!
//! * **hotspots** — links ranked by total attributed stall cycles, each
//!   with its dominant cause and the full per-cause breakdown;
//! * **class totals** — the same cycles folded per link class, answering
//!   "which link class saturates first";
//! * **root-blocker trees** — from the `(blocked, blocking)` edge
//!   durations: a *root blocker* is a wire that starves others of credits
//!   while not itself being credit-starved; its tree lists the upstream
//!   wires whose traffic it transitively stalls, so one glance explains a
//!   backpressure chain instead of a wall of symptoms.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::stall::{StallCause, NUM_CAUSES};

/// Per-link stall snapshot handed to the analyzer by the simulator.
#[derive(Debug, Clone)]
pub struct LinkStat {
    /// Dense wire id (matches the edge endpoints).
    pub wire: u32,
    /// Human-readable link label.
    pub label: String,
    /// Link-class name (e.g. `"torus"`, `"mesh"`).
    pub class: String,
    /// Stall cycles per cause, indexed by [`StallCause::index`].
    pub cause_cycles: [u64; NUM_CAUSES],
    /// Non-zero per-VC stall totals `(vc index, cycles)`.
    pub vc_cycles: Vec<(u8, u64)>,
}

impl LinkStat {
    /// Total stall cycles across all causes.
    pub fn total(&self) -> u64 {
        self.cause_cycles.iter().sum()
    }

    /// The cause holding the most cycles (ties break toward the lower
    /// cause index).
    pub fn dominant(&self) -> StallCause {
        let mut best = StallCause::NoCredit;
        let mut cycles = 0;
        for c in StallCause::ALL {
            if self.cause_cycles[c.index()] > cycles {
                cycles = self.cause_cycles[c.index()];
                best = c;
            }
        }
        best
    }
}

/// One node of a root-blocker tree: a wire and the wires whose traffic it
/// stalls.
#[derive(Debug, Clone)]
pub struct BlockerNode {
    /// The blocking wire.
    pub wire: u32,
    /// Its label.
    pub label: String,
    /// Stall cycles charged directly to this wire by its parent's edge (for
    /// the tree root: the sum over its direct victims).
    pub cycles: u64,
    /// Wires directly stalled waiting on this wire's credits, heaviest
    /// first.
    pub blocked: Vec<BlockerNode>,
}

impl BlockerNode {
    /// Stall cycles in this subtree (direct victims, transitively).
    pub fn transitive_cycles(&self) -> u64 {
        self.blocked
            .iter()
            .map(|b| b.cycles + b.transitive_cycles())
            .sum()
    }
}

/// Maximum depth of an exported root-blocker tree.
const TREE_DEPTH: usize = 4;
/// Maximum children kept per tree node.
const TREE_FANOUT: usize = 4;

/// The derived congestion analysis; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct CongestionReport {
    /// Total attributed stall cycles (equals the sum over hotspots).
    pub total_stall_cycles: u64,
    /// Machine-wide stall cycles per cause.
    pub cause_totals: [u64; NUM_CAUSES],
    /// `(class name, cycles)` descending by cycles.
    pub class_totals: Vec<(String, u64)>,
    /// Links with attributed stalls, descending by total (ties ascending by
    /// wire id).
    pub hotspots: Vec<LinkStat>,
    /// Root-blocker trees, descending by transitive stalled cycles.
    pub roots: Vec<BlockerNode>,
}

impl CongestionReport {
    /// Builds the report from per-link stats plus the stall table's
    /// `(blocked, blocking)` edge durations. `label_of` resolves wire ids
    /// that appear only as blockers.
    pub fn build(
        mut stats: Vec<LinkStat>,
        edges: &BTreeMap<(u32, u32), u64>,
        label_of: impl Fn(u32) -> String,
    ) -> CongestionReport {
        stats.retain(|s| s.total() > 0);
        stats.sort_by_key(|s| (std::cmp::Reverse(s.total()), s.wire));

        let mut cause_totals = [0u64; NUM_CAUSES];
        let mut class_map: BTreeMap<String, u64> = BTreeMap::new();
        let mut total = 0;
        for s in &stats {
            for (t, c) in cause_totals.iter_mut().zip(&s.cause_cycles) {
                *t += c;
            }
            *class_map.entry(s.class.clone()).or_insert(0) += s.total();
            total += s.total();
        }
        let mut class_totals: Vec<(String, u64)> = class_map.into_iter().collect();
        class_totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let roots = build_roots(edges, &label_of);
        CongestionReport {
            total_stall_cycles: total,
            cause_totals,
            class_totals,
            hotspots: stats,
            roots,
        }
    }

    /// Schema-stable JSON for the results attachment.
    pub fn to_json(&self) -> Json {
        let causes = |cc: &[u64; NUM_CAUSES]| {
            Json::Obj(
                StallCause::ALL
                    .iter()
                    .filter(|c| cc[c.index()] > 0)
                    .map(|c| (c.name().to_string(), Json::from(cc[c.index()])))
                    .collect(),
            )
        };
        let hotspots = self
            .hotspots
            .iter()
            .map(|s| {
                Json::obj([
                    ("link", Json::from(s.label.as_str())),
                    ("class", Json::from(s.class.as_str())),
                    ("total_cycles", Json::from(s.total())),
                    ("dominant", Json::from(s.dominant().name())),
                    ("causes", causes(&s.cause_cycles)),
                    (
                        "vcs",
                        Json::Arr(
                            s.vc_cycles
                                .iter()
                                .map(|&(vc, cy)| {
                                    Json::obj([
                                        ("vc", Json::from(u64::from(vc))),
                                        ("cycles", Json::from(cy)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let classes = self
            .class_totals
            .iter()
            .map(|(name, cy)| {
                Json::obj([
                    ("class", Json::from(name.as_str())),
                    ("cycles", Json::from(*cy)),
                ])
            })
            .collect();
        fn node_json(n: &BlockerNode) -> Json {
            Json::obj([
                ("link", Json::from(n.label.as_str())),
                ("cycles", Json::from(n.cycles)),
                ("transitive_cycles", Json::from(n.transitive_cycles())),
                (
                    "blocked",
                    Json::Arr(n.blocked.iter().map(node_json).collect()),
                ),
            ])
        }
        Json::obj([
            ("total_stall_cycles", Json::from(self.total_stall_cycles)),
            ("cause_totals", causes(&self.cause_totals)),
            ("class_totals", Json::Arr(classes)),
            ("hotspots", Json::Arr(hotspots)),
            (
                "root_blockers",
                Json::Arr(self.roots.iter().map(node_json).collect()),
            ),
        ])
    }

    /// Human-readable ranked report (at most `max_rows` hotspot rows).
    pub fn render(&self, max_rows: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "congestion: {} attributed stall cycles across {} links",
            self.total_stall_cycles,
            self.hotspots.len()
        );
        if self.total_stall_cycles == 0 {
            return out;
        }
        let _ = writeln!(out, "\nstall cycles by link class:");
        for (class, cy) in &self.class_totals {
            let pct = 100.0 * *cy as f64 / self.total_stall_cycles as f64;
            let _ = writeln!(out, "  {class:<16} {cy:>12}  ({pct:5.1}%)");
        }
        let _ = writeln!(out, "\nstall cycles by cause:");
        for c in StallCause::ALL {
            let cy = self.cause_totals[c.index()];
            if cy > 0 {
                let pct = 100.0 * cy as f64 / self.total_stall_cycles as f64;
                let _ = writeln!(out, "  {:<20} {cy:>12}  ({pct:5.1}%)", c.name());
            }
        }
        let _ = writeln!(out, "\ntop hotspots:");
        let _ = writeln!(
            out,
            "  {:<28} {:<10} {:>12}  dominant cause",
            "link", "class", "cycles"
        );
        for s in self.hotspots.iter().take(max_rows) {
            let _ = writeln!(
                out,
                "  {:<28} {:<10} {:>12}  {}",
                s.label,
                s.class,
                s.total(),
                s.dominant().name()
            );
        }
        if self.hotspots.len() > max_rows {
            let _ = writeln!(out, "  ... {} more", self.hotspots.len() - max_rows);
        }
        if !self.roots.is_empty() {
            let _ = writeln!(out, "\nroot blockers (backpressure chains):");
            for r in &self.roots {
                let _ = writeln!(
                    out,
                    "  {} stalls {} upstream cycles:",
                    r.label,
                    r.transitive_cycles()
                );
                fn walk(out: &mut String, n: &BlockerNode, depth: usize) {
                    for b in &n.blocked {
                        let _ = writeln!(
                            out,
                            "  {}<- {} ({} cycles)",
                            "   ".repeat(depth),
                            b.label,
                            b.cycles
                        );
                        walk(out, b, depth + 1);
                    }
                }
                walk(&mut out, r, 1);
            }
        }
        out
    }
}

/// Derives the root-blocker trees from the edge durations.
fn build_roots(
    edges: &BTreeMap<(u32, u32), u64>,
    label_of: &impl Fn(u32) -> String,
) -> Vec<BlockerNode> {
    // blame: cycles a wire inflicts as a blocker; victimhood: cycles a wire
    // suffers waiting on someone else's credits.
    let mut blame: BTreeMap<u32, u64> = BTreeMap::new();
    let mut victim: BTreeMap<u32, u64> = BTreeMap::new();
    // blocking wire -> (blocked wire, cycles), heaviest first after sort.
    let mut victims_of: BTreeMap<u32, Vec<(u32, u64)>> = BTreeMap::new();
    for (&(blocked, blocking), &cy) in edges {
        *blame.entry(blocking).or_insert(0) += cy;
        *victim.entry(blocked).or_insert(0) += cy;
        victims_of.entry(blocking).or_default().push((blocked, cy));
    }
    for v in victims_of.values_mut() {
        v.sort_by_key(|&(w, cy)| (std::cmp::Reverse(cy), w));
    }
    // True roots starve others while starving for nothing themselves; when
    // backpressure forms a cycle none exists, so fall back to every blamed
    // wire and let the heaviest lead.
    let mut roots: Vec<u32> = blame
        .keys()
        .copied()
        .filter(|w| !victim.contains_key(w))
        .collect();
    if roots.is_empty() {
        roots = blame.keys().copied().collect();
    }
    roots.sort_by_key(|w| (std::cmp::Reverse(blame[w]), *w));

    fn grow(
        wire: u32,
        cycles: u64,
        depth: usize,
        victims_of: &BTreeMap<u32, Vec<(u32, u64)>>,
        path: &mut Vec<u32>,
        label_of: &impl Fn(u32) -> String,
    ) -> BlockerNode {
        let mut blocked = Vec::new();
        if depth < TREE_DEPTH {
            path.push(wire);
            if let Some(vs) = victims_of.get(&wire) {
                for &(v, cy) in vs.iter().take(TREE_FANOUT) {
                    if path.contains(&v) {
                        continue; // backpressure cycle: don't recurse forever
                    }
                    blocked.push(grow(v, cy, depth + 1, victims_of, path, label_of));
                }
            }
            path.pop();
        }
        BlockerNode {
            wire,
            label: label_of(wire),
            cycles,
            blocked,
        }
    }

    roots
        .into_iter()
        .map(|w| {
            let direct: u64 = victims_of[&w].iter().map(|&(_, cy)| cy).sum();
            grow(w, direct, 0, &victims_of, &mut Vec::new(), label_of)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(wire: u32, class: &str, cause: StallCause, cycles: u64) -> LinkStat {
        let mut cause_cycles = [0u64; NUM_CAUSES];
        cause_cycles[cause.index()] = cycles;
        LinkStat {
            wire,
            label: format!("w{wire}"),
            class: class.into(),
            cause_cycles,
            vc_cycles: vec![(0, cycles)],
        }
    }

    #[test]
    fn hotspots_rank_by_total_and_classes_fold() {
        let stats = vec![
            stat(0, "mesh", StallCause::LostSa1, 10),
            stat(1, "torus", StallCause::NoCredit, 100),
            stat(2, "torus", StallCause::SerializerBusy, 50),
            stat(3, "mesh", StallCause::LostSa2, 0),
        ];
        let r = CongestionReport::build(stats, &BTreeMap::new(), |w| format!("w{w}"));
        assert_eq!(r.total_stall_cycles, 160);
        assert_eq!(r.hotspots.len(), 3); // the zero row is dropped
        assert_eq!(r.hotspots[0].wire, 1);
        assert_eq!(r.class_totals[0], ("torus".to_string(), 150));
        assert_eq!(r.hotspots[0].dominant(), StallCause::NoCredit);
        // Per-link totals sum to the attributed stall count.
        let sum: u64 = r.hotspots.iter().map(|h| h.total()).sum();
        assert_eq!(sum, r.total_stall_cycles);
    }

    #[test]
    fn chains_resolve_to_the_root_blocker() {
        // 0 waits on 1, 1 waits on 2: the root blocker is 2.
        let mut edges = BTreeMap::new();
        edges.insert((0, 1), 30u64);
        edges.insert((1, 2), 40u64);
        let r = CongestionReport::build(Vec::new(), &edges, |w| format!("w{w}"));
        assert_eq!(r.roots.len(), 1);
        let root = &r.roots[0];
        assert_eq!(root.wire, 2);
        assert_eq!(root.blocked.len(), 1);
        assert_eq!(root.blocked[0].wire, 1);
        assert_eq!(root.blocked[0].blocked[0].wire, 0);
        assert_eq!(root.transitive_cycles(), 70);
    }

    #[test]
    fn backpressure_cycles_terminate() {
        let mut edges = BTreeMap::new();
        edges.insert((0, 1), 5u64);
        edges.insert((1, 0), 7u64);
        let r = CongestionReport::build(Vec::new(), &edges, |w| format!("w{w}"));
        // No wire is victim-free; the heaviest blamed wire leads.
        assert!(!r.roots.is_empty());
        assert_eq!(r.roots[0].wire, 0); // blame(0)=7 > blame(1)=5
        let json = r.to_json();
        assert!(json.get("root_blockers").is_some());
    }

    #[test]
    fn render_and_json_carry_the_ranking() {
        let stats = vec![
            stat(1, "torus", StallCause::NoCredit, 100),
            stat(0, "mesh", StallCause::LostSa1, 10),
        ];
        let mut edges = BTreeMap::new();
        edges.insert((0, 1), 10u64);
        let r = CongestionReport::build(stats, &edges, |w| format!("w{w}"));
        let text = r.render(10);
        assert!(text.contains("110 attributed stall cycles"));
        assert!(text.contains("torus"));
        let json = r.to_json();
        assert_eq!(
            json.get("total_stall_cycles").and_then(Json::as_u64),
            Some(110)
        );
        let hs = json.get("hotspots").and_then(Json::as_arr).unwrap();
        assert_eq!(hs[0].get("link").and_then(Json::as_str), Some("w1"));
    }
}
