//! Dependency-free JSON emission and parsing for structured results.
//!
//! The build environment is offline, so instead of a serde dependency the
//! workspace serializes through this small value tree. Object keys keep
//! insertion order, making output deterministic — the harness determinism
//! test compares serialized bytes. The parser exists for the consumers that
//! need to read results back: schema-version migration of `results/` files
//! and the JSON round-trip of deadlock reports.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer; keeps full `u64` precision (seeds use the whole
    /// range).
    UInt(u64),
    /// A float; non-finite values serialize as `null` (JSON has no NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that parses
                    // back exactly, and always includes a decimal point or
                    // exponent — unambiguously a float.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// Numbers without a decimal point or exponent parse as [`Json::UInt`]
    /// when non-negative and [`Json::Int`] when negative; everything else
    /// numeric parses as [`Json::Float`]. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, accepting both integer variants when in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `i64`, accepting both integer variants when in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as `f64`; integers widen losslessly where possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is a [`Json::Obj`].
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // consumed; input is a &str so the sequence is valid.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    self.pos = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Some(rest) = text.strip_prefix('-') {
            rest.parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Json::Int)
                .ok_or_else(|| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_pretty_string(), "null\n");
        assert_eq!(Json::from(true).to_pretty_string(), "true\n");
        assert_eq!(Json::from(42i64).to_pretty_string(), "42\n");
        assert_eq!(Json::from(0.5).to_pretty_string(), "0.5\n");
        assert_eq!(Json::Float(f64::NAN).to_pretty_string(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).to_pretty_string(), "null\n");
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        // 1.0 must not serialize as the integer 1.
        assert_eq!(Json::from(1.0).to_pretty_string(), "1.0\n");
    }

    #[test]
    fn strings_escape_control_characters() {
        let s = Json::from("a\"b\\c\nd\u{1}").to_pretty_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn nested_structure_is_stable() {
        let j = Json::obj([
            ("name", Json::from("fig9")),
            (
                "points",
                Json::arr([Json::obj([("batch", Json::from(64u64))])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            j.to_pretty_string(),
            "{\n  \"name\": \"fig9\",\n  \"points\": [\n    {\n      \"batch\": 64\n    }\n  ],\n  \"empty\": []\n}\n"
        );
    }

    #[test]
    fn u64_keeps_full_precision() {
        assert_eq!(
            Json::from(u64::MAX).to_pretty_string(),
            format!("{}\n", u64::MAX)
        );
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let doc = Json::obj([
            ("experiment", Json::from("fig9")),
            ("schema_version", Json::from(2u64)),
            ("seed", Json::from(u64::MAX)),
            ("offset", Json::from(-3i64)),
            ("rate", Json::from(0.815)),
            ("ok", Json::from(true)),
            ("note", Json::from("line\nbreak \"quoted\" \\slash")),
            ("gap", Json::Null),
            (
                "windows",
                Json::arr([Json::arr([Json::from(1u64), Json::from(2u64)])]),
            ),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = doc.to_pretty_string();
        let parsed = Json::parse(&text).expect("round trip parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_handles_compact_and_spaced_forms() {
        let j = Json::parse("{\"a\":[1,2.5,-3],\"b\":{\"c\":null}}").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[2].as_i64(), Some(-3));
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        let spaced = Json::parse(" { \"a\" : [ ] } ").unwrap();
        assert_eq!(spaced.get("a"), Some(&Json::Arr(vec![])));
    }

    #[test]
    fn parse_unicode_escapes() {
        let j = Json::parse("\"caf\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(j.as_str(), Some("café 😀"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse(&format!("{}", u64::MAX)).unwrap(),
            Json::UInt(u64::MAX)
        );
    }
}
