//! The time-series sampler: periodic snapshots of dense counters.
//!
//! The simulator keeps cheap monotone counters and instantaneous gauges in
//! its hot state (flits carried per link class, packets in flight, grant
//! tallies, shim backlogs). Every N cycles it hands the sampler one raw
//! snapshot vector; the sampler turns counter channels into per-window
//! deltas and gauge channels into point-in-time readings, accumulating a
//! list of typed [`SampleWindow`]s that export to the v2 `results/` schema.

use crate::json::Json;

/// How a channel's raw snapshot is folded into windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Monotone counter; windows hold the delta across the window.
    Counter,
    /// Instantaneous value; windows hold the reading at the window's end.
    Gauge,
}

impl ChannelKind {
    /// Stable lowercase name, used in serialized windows.
    pub fn name(&self) -> &'static str {
        match self {
            ChannelKind::Counter => "counter",
            ChannelKind::Gauge => "gauge",
        }
    }
}

/// One sampled window `[start, end)` with one value per channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleWindow {
    /// First cycle covered by the window.
    pub start: u64,
    /// One past the last cycle covered.
    pub end: u64,
    /// Per-channel values, in channel registration order.
    pub values: Vec<u64>,
}

/// A growing series of sampled windows over a fixed channel set.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    every: u64,
    channels: Vec<(String, ChannelKind)>,
    /// Raw snapshot at the start of the currently open window.
    baseline: Vec<u64>,
    /// Cycle the open window started at; `None` before the first snapshot.
    open_since: Option<u64>,
    windows: Vec<SampleWindow>,
}

impl TimeSeries {
    /// Creates an empty series with the nominal sampling period `every`
    /// (recorded in the export; the caller drives actual snapshot timing).
    pub fn new(every: u64) -> TimeSeries {
        TimeSeries {
            every,
            channels: Vec::new(),
            baseline: Vec::new(),
            open_since: None,
            windows: Vec::new(),
        }
    }

    /// Registers a channel, returning its index. Must happen before the
    /// first [`TimeSeries::record`].
    ///
    /// # Panics
    ///
    /// Panics if a snapshot has already been recorded.
    pub fn channel(&mut self, name: impl Into<String>, kind: ChannelKind) -> usize {
        assert!(
            self.open_since.is_none() && self.windows.is_empty(),
            "channels must be registered before the first snapshot"
        );
        self.channels.push((name.into(), kind));
        self.baseline.push(0);
        self.channels.len() - 1
    }

    /// The nominal sampling period.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Number of registered channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Registered `(name, kind)` pairs in index order.
    pub fn channels(&self) -> &[(String, ChannelKind)] {
        &self.channels
    }

    /// The windows closed so far.
    pub fn windows(&self) -> &[SampleWindow] {
        &self.windows
    }

    /// Feeds one raw snapshot taken at `cycle`.
    ///
    /// The first call primes the series (opens the first window) without
    /// emitting anything; each later call closes the open window
    /// `[open_since, cycle)` — counter channels as deltas against the
    /// window-start baseline, gauges as the raw reading — and opens the
    /// next. A snapshot at the same cycle as the open window's start is a
    /// no-op, so forcing a final flush after a run that ended exactly on a
    /// sampling boundary never emits an empty window.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not have one value per registered channel.
    pub fn record(&mut self, cycle: u64, raw: &[u64]) {
        assert_eq!(
            raw.len(),
            self.channels.len(),
            "snapshot arity must match registered channels"
        );
        match self.open_since {
            None => {
                self.baseline.copy_from_slice(raw);
                self.open_since = Some(cycle);
            }
            Some(start) => {
                if cycle == start {
                    return;
                }
                assert!(cycle > start, "snapshots must advance in time");
                let values = self
                    .channels
                    .iter()
                    .zip(raw.iter().zip(self.baseline.iter()))
                    .map(|((_, kind), (now, base))| match kind {
                        ChannelKind::Counter => now.wrapping_sub(*base),
                        ChannelKind::Gauge => *now,
                    })
                    .collect();
                self.windows.push(SampleWindow {
                    start,
                    end: cycle,
                    values,
                });
                self.baseline.copy_from_slice(raw);
                self.open_since = Some(cycle);
            }
        }
    }

    /// Merges per-shard series — same channel set, snapshots taken at the
    /// same machine cycles — into one machine-wide series by summing aligned
    /// windows element-wise.
    ///
    /// Counter channels sum naturally (each shard counted its own flits);
    /// gauges sum too, because a sharded gauge (packets in flight, shim
    /// backlog) is a per-shard partition of the machine-wide reading. A
    /// window present in only some parts (a shard that flushed a partial
    /// tail the others did not) is carried through as the sum of the parts
    /// that have it, keyed — and deterministically ordered — by its
    /// `(start, end)` bounds.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the parts disagree on the sampling
    /// period or channel set.
    #[must_use]
    pub fn merged(parts: &[&TimeSeries]) -> TimeSeries {
        let first = parts.first().expect("merged() needs at least one series");
        let mut out = TimeSeries::new(first.every);
        out.channels = first.channels.clone();
        out.baseline = vec![0; first.channels.len()];
        let mut acc: std::collections::BTreeMap<(u64, u64), Vec<u64>> =
            std::collections::BTreeMap::new();
        for part in parts {
            assert_eq!(part.every, first.every, "sampling periods disagree");
            assert_eq!(part.channels, first.channels, "channel sets disagree");
            for w in &part.windows {
                let slot = acc
                    .entry((w.start, w.end))
                    .or_insert_with(|| vec![0; first.channels.len()]);
                for (s, v) in slot.iter_mut().zip(&w.values) {
                    *s += v;
                }
            }
        }
        out.windows = acc
            .into_iter()
            .map(|((start, end), values)| SampleWindow { start, end, values })
            .collect();
        out
    }

    /// Drops windows that start at or after `cycle`. A sharded worker may
    /// legally overrun a drained network by a partial lookahead window and
    /// sample inside it; truncating the merged series at the run's true end
    /// cycle removes those artifacts.
    pub fn truncate_after(&mut self, cycle: u64) {
        self.windows.retain(|w| w.start < cycle);
    }

    /// Serializes the series as the `windows` section of a v2 results file.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("every", Json::from(self.every)),
            (
                "channels",
                Json::arr(self.channels.iter().map(|(name, kind)| {
                    Json::obj([
                        ("name", Json::from(name.as_str())),
                        ("kind", Json::from(kind.name())),
                    ])
                })),
            ),
            (
                "windows",
                Json::arr(self.windows.iter().map(|w| {
                    Json::obj([
                        ("start", Json::from(w.start)),
                        ("end", Json::from(w.end)),
                        ("values", Json::arr(w.values.iter().map(|v| Json::from(*v)))),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_become_deltas_and_gauges_stay_raw() {
        let mut ts = TimeSeries::new(100);
        let c = ts.channel("delivered", ChannelKind::Counter);
        let g = ts.channel("in_flight", ChannelKind::Gauge);
        ts.record(0, &[0, 0]);
        ts.record(100, &[40, 7]);
        ts.record(200, &[90, 3]);
        let w = ts.windows();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].start, w[0].end), (0, 100));
        assert_eq!(w[0].values[c], 40);
        assert_eq!(w[0].values[g], 7);
        assert_eq!(w[1].values[c], 50);
        assert_eq!(w[1].values[g], 3);
    }

    #[test]
    fn duplicate_cycle_flush_is_a_no_op() {
        let mut ts = TimeSeries::new(100);
        ts.channel("x", ChannelKind::Counter);
        ts.record(0, &[0]);
        ts.record(100, &[5]);
        ts.record(100, &[5]);
        assert_eq!(ts.windows().len(), 1);
    }

    #[test]
    fn partial_final_window_keeps_its_true_bounds() {
        let mut ts = TimeSeries::new(100);
        ts.channel("x", ChannelKind::Counter);
        ts.record(0, &[0]);
        ts.record(100, &[10]);
        ts.record(130, &[13]);
        let w = ts.windows();
        assert_eq!((w[1].start, w[1].end), (100, 130));
        assert_eq!(w[1].values[0], 3);
    }

    #[test]
    fn merged_sums_aligned_windows_and_carries_ragged_tails() {
        let mut a = TimeSeries::new(100);
        a.channel("delivered", ChannelKind::Counter);
        a.channel("in_flight", ChannelKind::Gauge);
        a.record(0, &[0, 0]);
        a.record(100, &[40, 7]);
        a.record(150, &[55, 2]);
        let mut b = TimeSeries::new(100);
        b.channel("delivered", ChannelKind::Counter);
        b.channel("in_flight", ChannelKind::Gauge);
        b.record(0, &[0, 0]);
        b.record(100, &[10, 1]);

        let m = TimeSeries::merged(&[&a, &b]);
        assert_eq!(m.every(), 100);
        assert_eq!(m.channels(), a.channels());
        let w = m.windows();
        assert_eq!(w.len(), 2);
        // The aligned first window sums counters and gauges alike.
        assert_eq!((w[0].start, w[0].end), (0, 100));
        assert_eq!(w[0].values, vec![50, 8]);
        // `a`'s partial tail survives on its own bounds.
        assert_eq!((w[1].start, w[1].end), (100, 150));
        assert_eq!(w[1].values, vec![15, 2]);
    }

    #[test]
    #[should_panic(expected = "channel sets disagree")]
    fn merged_rejects_mismatched_channels() {
        let mut a = TimeSeries::new(10);
        a.channel("x", ChannelKind::Counter);
        let mut b = TimeSeries::new(10);
        b.channel("y", ChannelKind::Counter);
        let _ = TimeSeries::merged(&[&a, &b]);
    }

    #[test]
    fn to_json_emits_every_channels_and_windows() {
        let mut ts = TimeSeries::new(64);
        ts.channel("delivered", ChannelKind::Counter);
        ts.record(0, &[0]);
        ts.record(64, &[9]);
        let j = ts.to_json();
        assert_eq!(j.get("every").and_then(Json::as_u64), Some(64));
        let chans = j.get("channels").and_then(Json::as_arr).unwrap();
        assert_eq!(chans[0].get("kind").and_then(Json::as_str), Some("counter"));
        let windows = j.get("windows").and_then(Json::as_arr).unwrap();
        assert_eq!(windows.len(), 1);
        assert_eq!(
            windows[0].get("values").and_then(Json::as_arr).unwrap()[0].as_u64(),
            Some(9)
        );
    }
}
