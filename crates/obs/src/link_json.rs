//! Structural JSON round-tripping for [`GlobalLink`].
//!
//! Diagnostic exports (the deadlock report, shim backlog tables) need links
//! in their JSON, and readers need to get the typed link back. The display
//! string (`n3/R(0,1)->U+`) is emitted alongside for humans but is never
//! parsed; the structural fields are the source of truth.

use anton_core::chip::{
    ChanId, LocalEndpointId, LocalLink, MeshCoord, MeshDir, MESH_U, MESH_V, NUM_CHAN_ADAPTERS,
};
use anton_core::topology::{NodeId, Slice, TorusDir};
use anton_core::trace::GlobalLink;

use crate::json::Json;

/// Serializes a link structurally, plus a human-readable `label`.
pub fn link_to_json(link: &GlobalLink) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![("label".to_string(), Json::from(link.to_string()))];
    match link {
        GlobalLink::Local { node, link } => {
            pairs.push(("kind".to_string(), Json::from("local")));
            pairs.push(("node".to_string(), Json::from(u64::from(node.0))));
            pairs.push(("link".to_string(), local_link_to_json(link)));
        }
        GlobalLink::Torus { from, dir, slice } => {
            pairs.push(("kind".to_string(), Json::from("torus")));
            pairs.push(("from".to_string(), Json::from(u64::from(from.0))));
            pairs.push(("dir".to_string(), Json::from(dir.index())));
            pairs.push(("slice".to_string(), Json::from(u64::from(slice.0))));
        }
        GlobalLink::Direct { from, to } => {
            pairs.push(("kind".to_string(), Json::from("direct")));
            pairs.push(("from".to_string(), Json::from(u64::from(from.0))));
            pairs.push(("to".to_string(), Json::from(u64::from(to.0))));
        }
    }
    Json::Obj(pairs)
}

fn local_link_to_json(link: &LocalLink) -> Json {
    match link {
        LocalLink::Mesh { from, dir } => Json::obj([
            ("kind", Json::from("mesh")),
            ("u", Json::from(u64::from(from.u))),
            ("v", Json::from(u64::from(from.v))),
            ("dir", Json::from(dir.index())),
        ]),
        LocalLink::Skip { from } => Json::obj([
            ("kind", Json::from("skip")),
            ("u", Json::from(u64::from(from.u))),
            ("v", Json::from(u64::from(from.v))),
        ]),
        LocalLink::ChanToRouter(c) => Json::obj([
            ("kind", Json::from("chan_to_router")),
            ("chan", Json::from(c.index())),
        ]),
        LocalLink::RouterToChan(c) => Json::obj([
            ("kind", Json::from("router_to_chan")),
            ("chan", Json::from(c.index())),
        ]),
        LocalLink::EpToRouter(e) => Json::obj([
            ("kind", Json::from("ep_to_router")),
            ("ep", Json::from(u64::from(e.0))),
        ]),
        LocalLink::RouterToEp(e) => Json::obj([
            ("kind", Json::from("router_to_ep")),
            ("ep", Json::from(u64::from(e.0))),
        ]),
    }
}

/// Inverse of [`link_to_json`]; ignores the `label` field.
pub fn link_from_json(j: &Json) -> Result<GlobalLink, String> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("link missing 'kind'")?;
    let field = |obj: &Json, name: &str| -> Result<u64, String> {
        obj.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("link missing '{name}'"))
    };
    match kind {
        "local" => {
            let node =
                NodeId(u32::try_from(field(j, "node")?).map_err(|_| "link 'node' out of range")?);
            let lj = j.get("link").ok_or("local link missing 'link'")?;
            let link = local_link_from_json(lj)?;
            Ok(GlobalLink::Local { node, link })
        }
        "torus" => {
            let from =
                NodeId(u32::try_from(field(j, "from")?).map_err(|_| "link 'from' out of range")?);
            let dir = field(j, "dir")? as usize;
            if dir >= TorusDir::ALL.len() {
                return Err(format!("torus dir index {dir} out of range"));
            }
            let slice = field(j, "slice")?;
            if slice >= Slice::ALL.len() as u64 {
                return Err(format!("slice {slice} out of range"));
            }
            Ok(GlobalLink::Torus {
                from,
                dir: TorusDir::from_index(dir),
                slice: Slice(slice as u8),
            })
        }
        "direct" => {
            let from =
                NodeId(u32::try_from(field(j, "from")?).map_err(|_| "link 'from' out of range")?);
            let to = NodeId(u32::try_from(field(j, "to")?).map_err(|_| "link 'to' out of range")?);
            Ok(GlobalLink::Direct { from, to })
        }
        other => Err(format!("unknown link kind '{other}'")),
    }
}

fn local_link_from_json(j: &Json) -> Result<LocalLink, String> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("local link missing 'kind'")?;
    let field = |name: &str| -> Result<u64, String> {
        j.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("local link missing '{name}'"))
    };
    let coord = || -> Result<MeshCoord, String> {
        let (u, v) = (field("u")?, field("v")?);
        if u >= u64::from(MESH_U) || v >= u64::from(MESH_V) {
            return Err(format!("mesh coordinate ({u},{v}) out of range"));
        }
        Ok(MeshCoord::new(u as u8, v as u8))
    };
    let chan = || -> Result<ChanId, String> {
        let idx = field("chan")? as usize;
        if idx >= NUM_CHAN_ADAPTERS {
            return Err(format!("channel adapter index {idx} out of range"));
        }
        Ok(ChanId::from_index(idx))
    };
    let ep = || -> Result<LocalEndpointId, String> {
        let e = field("ep")?;
        u8::try_from(e)
            .map(LocalEndpointId)
            .map_err(|_| format!("endpoint id {e} out of range"))
    };
    match kind {
        "mesh" => {
            let dir = field("dir")? as usize;
            if dir >= MeshDir::ALL.len() {
                return Err(format!("mesh dir index {dir} out of range"));
            }
            Ok(LocalLink::Mesh {
                from: coord()?,
                dir: MeshDir::ALL[dir],
            })
        }
        "skip" => Ok(LocalLink::Skip { from: coord()? }),
        "chan_to_router" => Ok(LocalLink::ChanToRouter(chan()?)),
        "router_to_chan" => Ok(LocalLink::RouterToChan(chan()?)),
        "ep_to_router" => Ok(LocalLink::EpToRouter(ep()?)),
        "router_to_ep" => Ok(LocalLink::RouterToEp(ep()?)),
        other => Err(format!("unknown local link kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<GlobalLink> {
        let mut out = vec![
            GlobalLink::Torus {
                from: NodeId(5),
                dir: TorusDir::from_index(3),
                slice: Slice(1),
            },
            GlobalLink::Local {
                node: NodeId(0),
                link: LocalLink::Skip {
                    from: MeshCoord::new(2, 3),
                },
            },
            GlobalLink::Local {
                node: NodeId(7),
                link: LocalLink::EpToRouter(LocalEndpointId(11)),
            },
            GlobalLink::Local {
                node: NodeId(7),
                link: LocalLink::RouterToEp(LocalEndpointId(0)),
            },
        ];
        for dir in MeshDir::ALL {
            out.push(GlobalLink::Local {
                node: NodeId(1),
                link: LocalLink::Mesh {
                    from: MeshCoord::new(1, 2),
                    dir,
                },
            });
        }
        for idx in [0usize, 5, 11] {
            out.push(GlobalLink::Local {
                node: NodeId(2),
                link: LocalLink::ChanToRouter(ChanId::from_index(idx)),
            });
            out.push(GlobalLink::Local {
                node: NodeId(2),
                link: LocalLink::RouterToChan(ChanId::from_index(idx)),
            });
        }
        out
    }

    #[test]
    fn every_variant_round_trips() {
        for link in samples() {
            let j = link_to_json(&link);
            let text = j.to_pretty_string();
            let parsed = Json::parse(&text).unwrap();
            let back = link_from_json(&parsed).unwrap();
            assert_eq!(back, link);
            // The label matches the Display form.
            assert_eq!(
                parsed.get("label").and_then(Json::as_str),
                Some(link.to_string().as_str())
            );
        }
    }

    #[test]
    fn bad_indices_are_rejected() {
        let j = Json::obj([
            ("kind", Json::from("torus")),
            ("from", Json::from(0u64)),
            ("dir", Json::from(6u64)),
            ("slice", Json::from(0u64)),
        ]);
        assert!(link_from_json(&j).is_err());
    }
}
