//! Stall attribution: dense per-link/per-VC stall-cycle counters keyed by
//! *cause*.
//!
//! A head that fails to advance in an event-driven kernel is not re-examined
//! every cycle — its component sleeps until something could change. So the
//! table counts stalls as **segments**, not per-cycle increments: the first
//! time a component visit finds a head blocked it opens a segment stamped
//! with the classified cause; later visits that classify the same cause are
//! free (one compare); a visit that classifies a *different* cause closes
//! the old segment (attributing its whole duration to the old cause) and
//! opens a new one; the pop that finally moves the head closes the segment.
//! The result is exact whole-run per-cause cycle counts with no per-cycle
//! work on sleeping components.
//!
//! Causes that name a *blocking* wire (credit starvation, retransmit
//! backlog) additionally accumulate `(blocked wire, blocking wire)` edge
//! durations, from which [`CongestionReport`](crate::congestion) derives
//! root-blocker trees.
//!
//! Determinism: every `(wire, VC)` slot has exactly one observing component
//! (the wire's consumer), causes are pure functions of machine state, and
//! visits happen on deterministic wake cycles — so two runs that step the
//! same schedule produce identical tables, and per-shard tables of a
//! sharded run [`merge`](StallTable::merge) by summation into exactly the
//! serial table.

use std::collections::BTreeMap;

/// Number of stall causes ([`StallCause::ALL`]).
pub const NUM_CAUSES: usize = 7;

/// Why a buffered, ready head failed to advance this visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// The downstream wire's VC had fewer credits than the head's flits.
    NoCredit = 0,
    /// Another VC of the same input port won switch allocation stage 1.
    LostSa1 = 1,
    /// Another input port won the output port in switch allocation stage 2.
    LostSa2 = 2,
    /// The output port (or adapter-to-router link) was mid-transfer.
    OutputBusy = 3,
    /// The torus serializer was unavailable: token bucket refilling, or the
    /// serializer granted a competing VC this cycle.
    SerializerBusy = 4,
    /// Credit starvation on a lossy link whose go-back-N shim is holding a
    /// retransmit backlog — the credits are stuck behind re-sent frames.
    RetransmitBacklog = 5,
    /// Head parked at the serializer of a Down link (multicast copies have
    /// no reroute table and wait out the outage).
    DeadLinkDrain = 6,
}

impl StallCause {
    /// Every cause, in index order.
    pub const ALL: [StallCause; NUM_CAUSES] = [
        StallCause::NoCredit,
        StallCause::LostSa1,
        StallCause::LostSa2,
        StallCause::OutputBusy,
        StallCause::SerializerBusy,
        StallCause::RetransmitBacklog,
        StallCause::DeadLinkDrain,
    ];

    /// Stable snake_case name (used in JSON exports and reports).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::NoCredit => "no_credit",
            StallCause::LostSa1 => "lost_sa1",
            StallCause::LostSa2 => "lost_sa2",
            StallCause::OutputBusy => "output_busy",
            StallCause::SerializerBusy => "serializer_busy",
            StallCause::RetransmitBacklog => "retransmit_backlog",
            StallCause::DeadLinkDrain => "dead_link_drain",
        }
    }

    /// Dense index of this cause.
    pub fn index(self) -> usize {
        self as usize
    }
}

const NO_SEG: u8 = 0xFF;
const NO_BLOCKER: u32 = u32::MAX;

/// One open stall segment of a `(wire, VC)` slot.
#[derive(Debug, Clone, Copy)]
struct OpenSeg {
    /// `StallCause as u8`, or [`NO_SEG`] when the slot is not stalled.
    cause: u8,
    /// Blocking wire id, or [`NO_BLOCKER`].
    blocker: u32,
    /// Cycle the segment opened.
    since: u64,
}

const CLOSED: OpenSeg = OpenSeg {
    cause: NO_SEG,
    blocker: NO_BLOCKER,
    since: 0,
};

/// Dense per-`(wire, VC)` stall-cycle counters, segmented by cause; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct StallTable {
    vc_shift: u32,
    open: Vec<OpenSeg>,
    /// `slot * NUM_CAUSES + cause` → accumulated stall cycles.
    counts: Vec<u64>,
    /// `(blocked wire, blocking wire)` → accumulated stall cycles.
    edges: BTreeMap<(u32, u32), u64>,
    total: u64,
}

impl StallTable {
    /// Creates a table for `num_wires` wires with `1 << vc_shift` VC slots
    /// per wire.
    pub fn new(num_wires: usize, vc_shift: u32) -> StallTable {
        let slots = num_wires << vc_shift;
        StallTable {
            vc_shift,
            open: vec![CLOSED; slots],
            counts: vec![0; slots * NUM_CAUSES],
            edges: BTreeMap::new(),
            total: 0,
        }
    }

    #[inline]
    fn slot(&self, wire: u32, vcidx: u8) -> usize {
        ((wire as usize) << self.vc_shift) + vcidx as usize
    }

    fn close(&mut self, slot: usize, wire: u32, seg: OpenSeg, now: u64) {
        let dur = now - seg.since;
        if dur == 0 {
            return;
        }
        self.counts[slot * NUM_CAUSES + seg.cause as usize] += dur;
        self.total += dur;
        if seg.blocker != NO_BLOCKER {
            *self.edges.entry((wire, seg.blocker)).or_insert(0) += dur;
        }
    }

    /// Classifies the head of `(wire, vcidx)` as stalled with `cause` at
    /// cycle `now`, naming the `blocker` wire when the cause is another
    /// wire's credit state. Re-observing the same cause is a no-op; a cause
    /// change closes the running segment and opens a new one.
    #[inline]
    pub fn observe(
        &mut self,
        wire: u32,
        vcidx: u8,
        cause: StallCause,
        blocker: Option<u32>,
        now: u64,
    ) {
        let slot = self.slot(wire, vcidx);
        let blocker = blocker.unwrap_or(NO_BLOCKER);
        let seg = self.open[slot];
        if seg.cause == cause as u8 && seg.blocker == blocker {
            return;
        }
        if seg.cause != NO_SEG {
            self.close(slot, wire, seg, now);
        }
        self.open[slot] = OpenSeg {
            cause: cause as u8,
            blocker,
            since: now,
        };
    }

    /// Closes any open segment of `(wire, vcidx)` at cycle `now` — called
    /// when the head advances (is popped).
    #[inline]
    pub fn resolve(&mut self, wire: u32, vcidx: u8, now: u64) {
        let slot = self.slot(wire, vcidx);
        let seg = self.open[slot];
        if seg.cause != NO_SEG {
            self.close(slot, wire, seg, now);
            self.open[slot] = CLOSED;
        }
    }

    /// Closes every open segment at cycle `now` (end of run). The table
    /// stays usable; heads still stalled afterwards re-open on their next
    /// observation.
    pub fn flush(&mut self, now: u64) {
        for slot in 0..self.open.len() {
            let seg = self.open[slot];
            if seg.cause != NO_SEG {
                let wire = (slot >> self.vc_shift) as u32;
                self.close(slot, wire, seg, now);
                self.open[slot] = CLOSED;
            }
        }
    }

    /// Adds another table's closed counts into this one (per-shard tables of
    /// a sharded run sum into the serial table). Open segments are not
    /// merged — flush both tables first.
    ///
    /// # Panics
    ///
    /// Panics if the tables' shapes differ.
    pub fn merge(&mut self, other: &StallTable) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "table shape mismatch"
        );
        assert_eq!(self.vc_shift, other.vc_shift, "table shape mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (&k, &v) in &other.edges {
            *self.edges.entry(k).or_insert(0) += v;
        }
        self.total += other.total;
    }

    /// Total attributed stall cycles across every wire, VC, and cause.
    pub fn total_stall_cycles(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of wires the table covers.
    pub fn num_wires(&self) -> usize {
        self.open.len() >> self.vc_shift
    }

    /// Per-cause stall cycles of one wire, summed over its VCs.
    pub fn wire_cause_cycles(&self, wire: u32) -> [u64; NUM_CAUSES] {
        let mut out = [0u64; NUM_CAUSES];
        let base = (wire as usize) << self.vc_shift;
        for vc in 0..(1usize << self.vc_shift) {
            let row = (base + vc) * NUM_CAUSES;
            for (c, o) in self.counts[row..row + NUM_CAUSES].iter().zip(&mut out) {
                *o += c;
            }
        }
        out
    }

    /// Non-zero per-VC stall totals of one wire (all causes summed).
    pub fn wire_vc_cycles(&self, wire: u32) -> Vec<(u8, u64)> {
        let base = (wire as usize) << self.vc_shift;
        (0..(1usize << self.vc_shift))
            .filter_map(|vc| {
                let row = (base + vc) * NUM_CAUSES;
                let t: u64 = self.counts[row..row + NUM_CAUSES].iter().sum();
                (t > 0).then_some((vc as u8, t))
            })
            .collect()
    }

    /// Wires with any attributed stall cycles, ascending.
    pub fn stalled_wires(&self) -> Vec<u32> {
        (0..self.num_wires() as u32)
            .filter(|&w| self.wire_cause_cycles(w).iter().any(|&c| c > 0))
            .collect()
    }

    /// Accumulated `(blocked wire, blocking wire)` → stall-cycle edges.
    pub fn edges(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_attribute_whole_durations_to_the_classified_cause() {
        let mut t = StallTable::new(4, 2);
        t.observe(1, 0, StallCause::NoCredit, Some(3), 10);
        // Re-observing the same cause is free and extends the segment.
        t.observe(1, 0, StallCause::NoCredit, Some(3), 15);
        // A cause change at 20 closes [10, 20) as NoCredit.
        t.observe(1, 0, StallCause::LostSa1, None, 20);
        // The pop at 23 closes [20, 23) as LostSa1.
        t.resolve(1, 0, 23);
        let causes = t.wire_cause_cycles(1);
        assert_eq!(causes[StallCause::NoCredit.index()], 10);
        assert_eq!(causes[StallCause::LostSa1.index()], 3);
        assert_eq!(t.total_stall_cycles(), 13);
        assert_eq!(t.edges().get(&(1, 3)), Some(&10));
        assert_eq!(t.wire_vc_cycles(1), vec![(0, 13)]);
        assert_eq!(t.stalled_wires(), vec![1]);
    }

    #[test]
    fn zero_length_segments_vanish_and_resolve_without_open_is_a_noop() {
        let mut t = StallTable::new(2, 1);
        t.resolve(0, 0, 5);
        t.observe(0, 1, StallCause::OutputBusy, None, 7);
        t.resolve(0, 1, 7); // same-cycle open+close: nothing attributed
        assert!(t.is_empty());
    }

    #[test]
    fn flush_closes_everything_and_merge_sums_tables() {
        let mut a = StallTable::new(2, 1);
        a.observe(0, 0, StallCause::SerializerBusy, None, 0);
        a.flush(8);
        let mut b = StallTable::new(2, 1);
        b.observe(0, 0, StallCause::SerializerBusy, None, 2);
        b.observe(1, 1, StallCause::NoCredit, Some(0), 4);
        b.flush(10);
        a.merge(&b);
        assert_eq!(
            a.wire_cause_cycles(0)[StallCause::SerializerBusy.index()],
            16
        );
        assert_eq!(a.wire_cause_cycles(1)[StallCause::NoCredit.index()], 6);
        assert_eq!(a.total_stall_cycles(), 22);
        assert_eq!(a.edges().get(&(1, 0)), Some(&6));
    }

    #[test]
    fn blocker_change_with_same_cause_starts_a_new_edge_segment() {
        let mut t = StallTable::new(4, 0);
        t.observe(2, 0, StallCause::NoCredit, Some(0), 0);
        t.observe(2, 0, StallCause::NoCredit, Some(1), 6);
        t.resolve(2, 0, 10);
        assert_eq!(t.edges().get(&(2, 0)), Some(&6));
        assert_eq!(t.edges().get(&(2, 1)), Some(&4));
        assert_eq!(t.total_stall_cycles(), 10);
    }
}
