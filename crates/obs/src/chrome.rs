//! Chrome trace-event JSON export, viewable in Perfetto.
//!
//! The Chrome trace-event format models a trace as processes ("pid") holding
//! threads ("tid") holding timestamped events; Perfetto's legacy loader
//! (`ui.perfetto.dev` → "Open trace file") renders complete events ("X") as
//! spans and instant events ("i") as markers. We map simulation cycles
//! directly to the format's microsecond timestamps, so one cycle reads as
//! one microsecond on the timeline.
//!
//! [`ChromeTrace`] is a generic builder; [`ChromeTrace::from_recorder`]
//! derives the two standard views from a flight recorder: a **links**
//! process (one thread per wire, a span per packet occupancy) and a
//! **packets** process (one thread per packet, spans following the packet's
//! journey hop by hop).

use std::collections::BTreeMap;

use crate::event::TraceEventKind;
use crate::json::Json;
use crate::recorder::FlightRecorder;

/// Process id of the per-link view in recorder-derived traces.
pub const PID_LINKS: u64 = 1;
/// Process id of the per-packet view in recorder-derived traces.
pub const PID_PACKETS: u64 = 2;

#[derive(Debug, Clone)]
struct ChromeEvent {
    pid: u64,
    tid: u64,
    ts: u64,
    /// Duration for complete ("X") events; `None` emits an instant ("i")
    /// unless `value` is set.
    dur: Option<u64>,
    /// Sample value for counter ("C") events; takes precedence over `dur`.
    value: Option<u64>,
    name: String,
    args: Option<Json>,
}

/// Builder for a Chrome trace-event document.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<ChromeEvent>,
    process_names: BTreeMap<u64, String>,
    thread_names: BTreeMap<(u64, u64), String>,
}

impl ChromeTrace {
    /// Creates an empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Names a process (a top-level group in the Perfetto UI).
    pub fn process_name(&mut self, pid: u64, name: impl Into<String>) {
        self.process_names.insert(pid, name.into());
    }

    /// Names a thread (a timeline track in the Perfetto UI).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: impl Into<String>) {
        self.thread_names.insert((pid, tid), name.into());
    }

    /// Adds a complete ("X") event: a span `[ts, ts + dur]`.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        ts: u64,
        dur: u64,
        name: impl Into<String>,
        args: Option<Json>,
    ) {
        self.events.push(ChromeEvent {
            pid,
            tid,
            ts,
            dur: Some(dur),
            value: None,
            name: name.into(),
            args,
        });
    }

    /// Adds an instant ("i") event: a point marker at `ts`.
    pub fn instant(
        &mut self,
        pid: u64,
        tid: u64,
        ts: u64,
        name: impl Into<String>,
        args: Option<Json>,
    ) {
        self.events.push(ChromeEvent {
            pid,
            tid,
            ts,
            dur: None,
            value: None,
            name: name.into(),
            args,
        });
    }

    /// Adds a counter ("C") sample: the series named `name` on process
    /// `pid` takes `value` from `ts` onward. Perfetto renders each
    /// `(pid, name)` pair as one counter track.
    pub fn counter(&mut self, pid: u64, ts: u64, name: impl Into<String>, value: u64) {
        self.events.push(ChromeEvent {
            pid,
            tid: 0,
            ts,
            dur: None,
            value: Some(value),
            name: name.into(),
            args: None,
        });
    }

    /// Derives one *cumulative* counter track per selected channel of a
    /// sampled time series: each closed window `[start, end)` contributes a
    /// sample at `end` holding the running sum of the channel (so counter
    /// tracks are monotone and read as totals-so-far). A zero sample at the
    /// first window's start anchors every track.
    pub fn counters_from_timeseries(
        &mut self,
        pid: u64,
        ts: &crate::sampler::TimeSeries,
        mut select: impl FnMut(&str) -> bool,
    ) {
        let windows = ts.windows();
        let Some(first) = windows.first() else {
            return;
        };
        for (ci, (name, kind)) in ts.channels().iter().enumerate() {
            if !select(name) {
                continue;
            }
            self.counter(pid, first.start, name.clone(), 0);
            let mut running = 0u64;
            for w in windows {
                let sample = match kind {
                    crate::sampler::ChannelKind::Counter => {
                        running += w.values[ci];
                        running
                    }
                    // Gauges are instantaneous readings: export them raw.
                    crate::sampler::ChannelKind::Gauge => w.values[ci],
                };
                self.counter(pid, w.end, name.clone(), sample);
            }
        }
    }

    /// Number of span/instant events added (metadata excluded).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no span/instant events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the document: metadata records first, then all events
    /// sorted by `(pid, tid, ts)` so timestamps are monotone per track.
    pub fn to_json(&self) -> Json {
        let mut out = Vec::new();
        for (pid, name) in &self.process_names {
            out.push(Json::obj([
                ("name", Json::from("process_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(*pid)),
                ("tid", Json::from(0u64)),
                ("args", Json::obj([("name", Json::from(name.as_str()))])),
            ]));
        }
        for ((pid, tid), name) in &self.thread_names {
            out.push(Json::obj([
                ("name", Json::from("thread_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(*pid)),
                ("tid", Json::from(*tid)),
                ("args", Json::obj([("name", Json::from(name.as_str()))])),
            ]));
        }
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| {
            let e = &self.events[i];
            (e.pid, e.tid, e.ts, i)
        });
        for i in order {
            let e = &self.events[i];
            let ph = if e.value.is_some() {
                "C"
            } else if e.dur.is_some() {
                "X"
            } else {
                "i"
            };
            let mut pairs = vec![
                ("name".to_string(), Json::from(e.name.as_str())),
                ("ph".to_string(), Json::from(ph)),
                ("pid".to_string(), Json::from(e.pid)),
                ("tid".to_string(), Json::from(e.tid)),
                ("ts".to_string(), Json::from(e.ts)),
            ];
            if let Some(value) = e.value {
                pairs.push((
                    "args".to_string(),
                    Json::obj([("value", Json::from(value))]),
                ));
            } else if let Some(dur) = e.dur {
                pairs.push(("dur".to_string(), Json::from(dur)));
            } else {
                pairs.push(("s".to_string(), Json::from("t")));
            }
            if e.value.is_none() {
                if let Some(args) = &e.args {
                    pairs.push(("args".to_string(), args.clone()));
                }
            }
            out.push(Json::Obj(pairs));
        }
        Json::obj([
            ("traceEvents", Json::Arr(out)),
            ("displayTimeUnit", Json::from("ms")),
        ])
    }

    /// Builds the standard two-view trace from a flight recorder.
    pub fn from_recorder(rec: &FlightRecorder) -> ChromeTrace {
        let mut trace = ChromeTrace::new();
        trace.process_name(PID_LINKS, "links");
        trace.process_name(PID_PACKETS, "packets");

        // Per-link view: hop events become occupancy spans on the wire's
        // track; shim and stall events become markers.
        let mut by_packet: BTreeMap<u64, Vec<&crate::event::TraceEvent>> = BTreeMap::new();
        for track in 0..rec.num_tracks() as u32 {
            let mut named = false;
            for ev in rec.track_events(track) {
                if !named {
                    trace.thread_name(PID_LINKS, u64::from(track), rec.track_label(track));
                    named = true;
                }
                match ev.kind {
                    TraceEventKind::Hop { vc, flits } => {
                        let pkt = ev.packet.unwrap_or(u64::MAX);
                        trace.complete(
                            PID_LINKS,
                            u64::from(track),
                            ev.cycle,
                            u64::from(flits.max(1)),
                            format!("pkt{pkt} vc{vc}"),
                            None,
                        );
                    }
                    TraceEventKind::Retransmit => {
                        trace.instant(PID_LINKS, u64::from(track), ev.cycle, "retransmit", None);
                    }
                    TraceEventKind::FrameDrop { ack } => {
                        trace.instant(
                            PID_LINKS,
                            u64::from(track),
                            ev.cycle,
                            if ack { "ack drop" } else { "frame drop" },
                            None,
                        );
                    }
                    TraceEventKind::Stall { idle_cycles } => {
                        trace.instant(
                            PID_LINKS,
                            u64::from(track),
                            ev.cycle,
                            format!("stall ({idle_cycles} idle)"),
                            None,
                        );
                    }
                    _ => {}
                }
                if let Some(pkt) = ev.packet {
                    by_packet.entry(pkt).or_default().push(ev);
                }
            }
        }

        // Per-packet view: consecutive events become journey spans.
        for (pkt, mut evs) in by_packet {
            evs.sort_by_key(|e| e.seq);
            trace.thread_name(PID_PACKETS, pkt, format!("pkt{pkt}"));
            for pair in evs.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let dur = b.cycle.saturating_sub(a.cycle).max(1);
                trace.complete(PID_PACKETS, pkt, a.cycle, dur, describe(a, rec), None);
            }
            if let Some(last) = evs.last() {
                trace.instant(PID_PACKETS, pkt, last.cycle, describe(last, rec), None);
            }
        }
        trace
    }
}

fn describe(ev: &crate::event::TraceEvent, rec: &FlightRecorder) -> String {
    let label = rec.track_label(ev.track);
    match ev.kind {
        TraceEventKind::Inject => format!("inject @{label}"),
        TraceEventKind::Hop { vc, .. } => format!("hop {label} vc{vc}"),
        TraceEventKind::VcPromotion { from, to } => format!("promote vc{from}->vc{to} @{label}"),
        TraceEventKind::Grant { site, .. } => format!("grant {} @{label}", site.name()),
        TraceEventKind::Retransmit => format!("retransmit @{label}"),
        TraceEventKind::FrameDrop { ack } => {
            format!("{} @{label}", if ack { "ack drop" } else { "frame drop" })
        }
        TraceEventKind::Deliver => format!("deliver @{label}"),
        TraceEventKind::Stall { .. } => format!("stall @{label}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;

    fn ts_of(ev: &Json) -> u64 {
        ev.get("ts").and_then(Json::as_u64).unwrap()
    }

    #[test]
    fn timestamps_are_monotone_per_track() {
        let mut rec = FlightRecorder::new(32);
        let a = rec.add_track("n0/E0->R");
        let b = rec.add_track("n0/R(0,0)->U+");
        // Record out of timestamp order across tracks.
        rec.record(a, 5, Some(0), TraceEventKind::Hop { vc: 0, flits: 4 });
        rec.record(b, 9, Some(0), TraceEventKind::Hop { vc: 0, flits: 4 });
        rec.record(a, 7, Some(1), TraceEventKind::Hop { vc: 1, flits: 4 });
        rec.record(b, 2, Some(1), TraceEventKind::Hop { vc: 1, flits: 4 });
        let doc = ChromeTrace::from_recorder(&rec).to_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let mut last: std::collections::BTreeMap<(u64, u64), u64> = Default::default();
        for ev in events {
            if ev.get("ph").and_then(Json::as_str) == Some("M") {
                continue;
            }
            let key = (
                ev.get("pid").and_then(Json::as_u64).unwrap(),
                ev.get("tid").and_then(Json::as_u64).unwrap(),
            );
            let ts = ts_of(ev);
            if let Some(prev) = last.insert(key, ts) {
                assert!(ts >= prev, "ts must be monotone within a track");
            }
        }
    }

    #[test]
    fn counter_tracks_from_timeseries_are_cumulative_and_monotone() {
        use crate::sampler::{ChannelKind, TimeSeries};
        let mut ts = TimeSeries::new(10);
        ts.channel("flits_torus", ChannelKind::Counter);
        ts.channel("occupied_vcs", ChannelKind::Gauge);
        ts.record(0, &[0, 0]);
        ts.record(10, &[5, 3]);
        ts.record(20, &[9, 1]);
        let mut trace = ChromeTrace::new();
        trace.counters_from_timeseries(7, &ts, |name| name.starts_with("flits_"));
        let doc = trace.to_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let samples: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .map(|e| {
                assert_eq!(e.get("name").and_then(Json::as_str), Some("flits_torus"));
                (
                    ts_of(e),
                    e.get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Json::as_u64)
                        .unwrap(),
                )
            })
            .collect();
        // Anchor at the first window start, then the running sum per window.
        assert_eq!(samples, vec![(0, 0), (10, 5), (20, 9)]);
        for pair in samples.windows(2) {
            assert!(pair[1].0 >= pair[0].0 && pair[1].1 >= pair[0].1);
        }
    }

    #[test]
    fn from_recorder_builds_both_views() {
        let mut rec = FlightRecorder::new(32);
        let w = rec.add_track("n0/E0->R");
        rec.record(w, 0, Some(3), TraceEventKind::Inject);
        rec.record(w, 1, Some(3), TraceEventKind::Hop { vc: 0, flits: 4 });
        rec.record(w, 9, Some(3), TraceEventKind::Deliver);
        let doc = ChromeTrace::from_recorder(&rec).to_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let pids: std::collections::BTreeSet<u64> = events
            .iter()
            .map(|e| e.get("pid").and_then(Json::as_u64).unwrap())
            .collect();
        assert!(pids.contains(&PID_LINKS) && pids.contains(&PID_PACKETS));
        // The packet view has one span per consecutive event pair.
        let pkt_spans = events
            .iter()
            .filter(|e| {
                e.get("pid").and_then(Json::as_u64) == Some(PID_PACKETS)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .count();
        assert_eq!(pkt_spans, 2);
    }
}
