//! The flight recorder: bounded per-component event history.
//!
//! Every component track (one per wire of the simulated machine) owns a
//! fixed-capacity ring buffer. Recording is O(1) and never allocates after
//! construction; once a ring is full the oldest event is overwritten
//! (drop-oldest), so after any run each track holds the *most recent* window
//! of its history — exactly what post-mortem diagnostics like the deadlock
//! report want. A global sequence number stamps every event so rings can be
//! merged back into exact recording order.

use crate::event::{TraceEvent, TraceEventKind};

/// A fixed-capacity drop-oldest ring buffer of trace events.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates an empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            head: 0,
            cap,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest one at capacity.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many events have been overwritten since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

/// The flight recorder: one [`EventRing`] per component track plus the
/// global sequence counter.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    rings: Vec<EventRing>,
    labels: Vec<String>,
    seq: u64,
}

impl FlightRecorder {
    /// Creates a recorder whose tracks each hold `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            rings: Vec::new(),
            labels: Vec::new(),
            seq: 0,
        }
    }

    /// Registers a component track, returning its id.
    pub fn add_track(&mut self, label: impl Into<String>) -> u32 {
        let id = self.rings.len() as u32;
        self.rings.push(EventRing::new(self.capacity));
        self.labels.push(label.into());
        id
    }

    /// Number of registered tracks.
    pub fn num_tracks(&self) -> usize {
        self.rings.len()
    }

    /// The label a track was registered with.
    pub fn track_label(&self, track: u32) -> &str {
        &self.labels[track as usize]
    }

    /// Records an event on `track`, stamping the next sequence number.
    #[inline]
    pub fn record(&mut self, track: u32, cycle: u64, packet: Option<u64>, kind: TraceEventKind) {
        let ev = TraceEvent {
            seq: self.seq,
            cycle,
            track,
            packet,
            kind,
        };
        self.seq += 1;
        self.rings[track as usize].push(ev);
    }

    /// Total events recorded (including ones since overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// Events still held on one track, oldest → newest.
    pub fn track_events(&self, track: u32) -> impl Iterator<Item = &TraceEvent> {
        self.rings[track as usize].iter()
    }

    /// How many events a track has overwritten.
    pub fn track_dropped(&self, track: u32) -> u64 {
        self.rings[track as usize].dropped()
    }

    /// All held events merged across tracks in recording (sequence) order.
    pub fn all_events(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self
            .rings
            .iter()
            .flat_map(EventRing::iter)
            .copied()
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// The last `k` held events satisfying `pred`, in recording order.
    ///
    /// This is the deadlock report's "what happened recently to this packet /
    /// on this link" query; it walks every ring, so it is meant for the cold
    /// diagnostic path, not the per-cycle hot path.
    pub fn recent_matching(
        &self,
        k: usize,
        mut pred: impl FnMut(&TraceEvent) -> bool,
    ) -> Vec<TraceEvent> {
        let mut hits: Vec<TraceEvent> = self
            .rings
            .iter()
            .flat_map(EventRing::iter)
            .filter(|e| pred(e))
            .copied()
            .collect();
        hits.sort_by_key(|e| e.seq);
        if hits.len() > k {
            hits.drain(..hits.len() - k);
        }
        hits
    }
}

/// Merges the held events of several recorders — the per-shard rings of a
/// sharded simulation — into one canonical stream.
///
/// The order is `(cycle, track, part index, seq)`: global time first, then
/// the machine's stable component order, then the shard that recorded it,
/// then that shard's own recording order. Every key is deterministic for a
/// deterministic simulation, so the merged stream is byte-identical across
/// runs and thread schedules — the property the sharded kernel's trace
/// export contract requires. Sequence numbers are reassigned to the merged
/// position, making the result a valid single-recorder event stream for
/// downstream exporters.
pub fn merged_events<'a>(parts: impl IntoIterator<Item = &'a FlightRecorder>) -> Vec<TraceEvent> {
    let mut tagged: Vec<(usize, TraceEvent)> = parts
        .into_iter()
        .enumerate()
        .flat_map(|(i, rec)| {
            rec.rings
                .iter()
                .flat_map(EventRing::iter)
                .map(move |e| (i, *e))
        })
        .collect();
    tagged.sort_by_key(|(part, e)| (e.cycle, e.track, *part, e.seq));
    tagged
        .into_iter()
        .enumerate()
        .map(|(seq, (_, mut e))| {
            e.seq = seq as u64;
            e
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, cycle: u64) -> TraceEvent {
        TraceEvent {
            seq,
            cycle,
            track: 0,
            packet: Some(seq),
            kind: TraceEventKind::Inject,
        }
    }

    #[test]
    fn ring_drops_oldest_deterministically_at_capacity() {
        let mut ring = EventRing::new(4);
        for i in 0..10 {
            ring.push(ev(i, 100 + i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.dropped(), 6);
        // Exactly the newest four survive, oldest → newest.
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // Replaying the same pushes yields the identical survivor set.
        let mut again = EventRing::new(4);
        for i in 0..10 {
            again.push(ev(i, 100 + i));
        }
        let again_seqs: Vec<u64> = again.iter().map(|e| e.seq).collect();
        assert_eq!(again_seqs, seqs);
    }

    #[test]
    fn ring_below_capacity_keeps_everything_in_order() {
        let mut ring = EventRing::new(8);
        for i in 0..5 {
            ring.push(ev(i, i));
        }
        assert_eq!(ring.dropped(), 0);
        let seqs: Vec<u64> = ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut ring = EventRing::new(0);
        ring.push(ev(0, 0));
        ring.push(ev(1, 1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.iter().next().unwrap().seq, 1);
    }

    #[test]
    fn recorder_merges_tracks_in_sequence_order() {
        let mut rec = FlightRecorder::new(16);
        let a = rec.add_track("wire-a");
        let b = rec.add_track("wire-b");
        rec.record(a, 1, Some(0), TraceEventKind::Inject);
        rec.record(b, 1, Some(1), TraceEventKind::Inject);
        rec.record(a, 2, Some(0), TraceEventKind::Deliver);
        assert_eq!(rec.total_recorded(), 3);
        assert_eq!(rec.track_label(a), "wire-a");
        let all = rec.all_events();
        let seqs: Vec<u64> = all.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(all[1].track, b);
    }

    #[test]
    fn merged_events_order_by_cycle_track_part_and_reassign_seq() {
        // Two "shards" that each recorded an interleaved slice of the same
        // machine: the merge must land in (cycle, track, part) order with
        // fresh consecutive sequence numbers, regardless of per-part seq.
        let mut p0 = FlightRecorder::new(8);
        let t0 = p0.add_track("wire-0");
        let t1 = p0.add_track("wire-1");
        p0.record(t1, 5, Some(1), TraceEventKind::Inject);
        p0.record(t0, 7, Some(1), TraceEventKind::Deliver);
        let mut p1 = FlightRecorder::new(8);
        let u0 = p1.add_track("wire-0");
        let u1 = p1.add_track("wire-1");
        p1.record(u0, 5, Some(2), TraceEventKind::Inject);
        p1.record(u1, 5, Some(3), TraceEventKind::Inject);

        let merged = merged_events([&p0, &p1]);
        let key: Vec<(u64, u32, Option<u64>)> = merged
            .iter()
            .map(|e| (e.cycle, e.track, e.packet))
            .collect();
        assert_eq!(
            key,
            vec![
                (5, u0, Some(2)),
                (5, t1, Some(1)), // part 0 before part 1 on the same track
                (5, u1, Some(3)),
                (7, t0, Some(1)),
            ]
        );
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // Merging a single recorder reproduces its own stream.
        assert_eq!(merged_events([&p0]).len(), 2);
    }

    #[test]
    fn overflowed_ring_merge_stays_monotone_and_renumbers_stably() {
        // Shard 0's ring overflows (drop-oldest); shard 1's does not. The
        // merged stream must still be monotone in (cycle, track, part) and
        // its renumbering must be a pure function of the surviving events —
        // i.e. stable across a replay.
        let build = || {
            let mut p0 = FlightRecorder::new(4);
            let w = p0.add_track("wire-0");
            for i in 0..12 {
                p0.record(w, 100 + i, Some(i), TraceEventKind::Inject);
            }
            let mut p1 = FlightRecorder::new(4);
            let w1 = p1.add_track("wire-0");
            p1.record(w1, 103, Some(50), TraceEventKind::Deliver);
            p1.record(w1, 109, Some(51), TraceEventKind::Deliver);
            (p0, p1)
        };
        let (p0, p1) = build();
        assert_eq!(p0.track_dropped(0), 8);
        assert_eq!(p1.track_dropped(0), 0);

        let merged = merged_events([&p0, &p1]);
        // Drop-oldest kept exactly p0's last four events; p1 kept both.
        assert_eq!(merged.len(), 6);
        let mut last = (0u64, 0u32, 0usize);
        for (i, e) in merged.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "seq renumbered to merged position");
            let part = usize::from(e.kind == TraceEventKind::Deliver);
            let key = (e.cycle, e.track, part);
            assert!(key >= last, "merged order must stay monotone");
            last = key;
        }
        // The non-overflowed shard's early event survives even though the
        // overflowed shard dropped that whole cycle range.
        assert_eq!(merged[0].cycle, 103);
        assert_eq!(merged[0].packet, Some(50));

        // Stability: replaying the identical recordings renumbers
        // identically.
        let (q0, q1) = build();
        assert_eq!(merged_events([&q0, &q1]), merged);
    }

    #[test]
    fn recent_matching_returns_last_k_in_order() {
        let mut rec = FlightRecorder::new(16);
        let a = rec.add_track("wire-a");
        let b = rec.add_track("wire-b");
        for i in 0..6 {
            let t = if i % 2 == 0 { a } else { b };
            rec.record(t, i, Some(7), TraceEventKind::Inject);
        }
        rec.record(a, 10, Some(8), TraceEventKind::Deliver);
        let recent = rec.recent_matching(3, |e| e.packet == Some(7));
        let seqs: Vec<u64> = recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
    }
}
