//! # anton-obs
//!
//! Observability layer for the Anton 2 unified-network reproduction: the
//! pieces that turn a simulation run into an inspectable timeline rather
//! than a single end-of-run aggregate.
//!
//! * [`json`] — the dependency-free JSON value tree (writer *and* parser)
//!   shared by every exporter in the workspace;
//! * [`event`] — the typed trace-event taxonomy (inject, hop, VC promotion,
//!   arbiter grant, retransmit, deliver, stall);
//! * [`recorder`] — the flight recorder: fixed-capacity per-component ring
//!   buffers of [`event::TraceEvent`]s with drop-oldest semantics, plus the
//!   canonical [`merged_events`](recorder::merged_events) order for the
//!   per-shard rings of a sharded run;
//! * [`sampler`] — the time-series sampler: periodic snapshots of dense
//!   kernel counters folded into typed windows, with
//!   [`TimeSeries::merged`](sampler::TimeSeries::merged) summing per-shard
//!   series into the machine-wide view;
//! * [`stall`] — stall attribution: segmented per-link/per-VC stall-cycle
//!   counters keyed by cause (credit starvation, lost arbitration,
//!   serializer busy, retransmit backlog, dead-link drain);
//! * [`congestion`] — the analyzer over a stall table: ranked hotspots,
//!   per-link-class totals, and root-blocker backpressure trees;
//! * [`phase`] — shard phase profiling: per-worker wall-clock split into
//!   compute / barrier-wait / mailbox / merge;
//! * [`chrome`] — Chrome trace-event JSON export (viewable in Perfetto),
//!   including counter ("C") tracks derived from sampled time series;
//! * [`link_json`] — structural JSON round-tripping for
//!   [`anton_core::trace::GlobalLink`].
//!
//! The crate deliberately knows nothing about the simulator: the simulator
//! pushes events and counter snapshots in, exporters pull JSON out. This
//! keeps the dependency arrow pointing the right way (`anton-sim` depends on
//! `anton-obs`, never the reverse) and lets offline tools reuse the parsers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod congestion;
pub mod event;
pub mod json;
pub mod link_json;
pub mod phase;
pub mod recorder;
pub mod sampler;
pub mod stall;

pub use chrome::ChromeTrace;
pub use congestion::{CongestionReport, LinkStat};
pub use event::{TraceEvent, TraceEventKind};
pub use json::Json;
pub use phase::{PhaseClock, ShardPhase, NUM_SHARD_PHASES, SHARD_PHASE_NAMES};
pub use recorder::{merged_events, EventRing, FlightRecorder};
pub use sampler::{ChannelKind, SampleWindow, TimeSeries};
pub use stall::{StallCause, StallTable};

use std::io;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temporary file first and are renamed into place, so a crashed or
/// interrupted writer never leaves a half-written results file behind.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_existing_file_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("anton-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!dir.join("out.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
