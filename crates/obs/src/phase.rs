//! Shard phase profiling: where a parallel worker's wall-clock goes.
//!
//! Each worker of a sharded run owns a [`PhaseClock`] — a lock-free
//! (thread-local, no shared state) accumulator splitting its wall-clock
//! into the four phases of the two-barrier window protocol:
//!
//! * **compute** — stepping the shard's replica through the window;
//! * **barrier_wait** — blocked on either window barrier (load imbalance
//!   plus coordinator replay time);
//! * **mailbox** — draining boundary exports and publishing them to the
//!   consumer shards' inboxes;
//! * **merge** — sorting and applying this shard's imports.
//!
//! The clock costs one branch per lap when disabled. Per-shard totals are
//! exported as `phase_ns` (see [`phases_to_json`]) on the sharded
//! `bench_kernel` entries and as per-shard tracks in the Perfetto trace.

use std::time::Instant;

/// Number of shard phases.
pub const NUM_SHARD_PHASES: usize = 4;

/// JSON/report key per phase, in [`ShardPhase`] index order.
pub const SHARD_PHASE_NAMES: [&str; NUM_SHARD_PHASES] =
    ["compute", "barrier_wait", "mailbox", "merge"];

/// One phase of a shard worker's window loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// Stepping the replica through the window.
    Compute = 0,
    /// Blocked on a window barrier.
    BarrierWait = 1,
    /// Draining and publishing boundary exports.
    Mailbox = 2,
    /// Sorting and applying imports.
    Merge = 3,
}

/// Per-worker phase accumulator; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct PhaseClock {
    enabled: bool,
    last: Instant,
    acc: [u64; NUM_SHARD_PHASES],
}

impl PhaseClock {
    /// Creates a clock; when `enabled` is false every call is a no-op
    /// behind one branch.
    pub fn new(enabled: bool) -> PhaseClock {
        PhaseClock {
            enabled,
            last: Instant::now(),
            acc: [0; NUM_SHARD_PHASES],
        }
    }

    /// Charges the time since the previous lap (or construction) to
    /// `phase`.
    #[inline]
    pub fn lap(&mut self, phase: ShardPhase) {
        if self.enabled {
            let now = Instant::now();
            self.acc[phase as usize] += (now - self.last).as_nanos() as u64;
            self.last = now;
        }
    }

    /// The accumulated nanoseconds per phase.
    pub fn into_ns(self) -> [u64; NUM_SHARD_PHASES] {
        self.acc
    }
}

/// Renders one shard's phase nanoseconds as an object keyed by
/// [`SHARD_PHASE_NAMES`].
pub fn phases_to_json(ns: &[u64; NUM_SHARD_PHASES]) -> crate::json::Json {
    crate::json::Json::Obj(
        SHARD_PHASE_NAMES
            .iter()
            .zip(ns)
            .map(|(name, v)| (name.to_string(), crate::json::Json::from(*v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_clock_accumulates_nothing() {
        let mut c = PhaseClock::new(false);
        c.lap(ShardPhase::Compute);
        std::thread::yield_now();
        c.lap(ShardPhase::BarrierWait);
        assert_eq!(c.into_ns(), [0; NUM_SHARD_PHASES]);
    }

    #[test]
    fn laps_charge_elapsed_time_to_the_named_phase() {
        let mut c = PhaseClock::new(true);
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.lap(ShardPhase::Compute);
        c.lap(ShardPhase::Merge);
        let ns = c.into_ns();
        assert!(ns[ShardPhase::Compute as usize] >= 1_000_000);
        assert_eq!(ns[ShardPhase::BarrierWait as usize], 0);
    }

    #[test]
    fn json_keys_follow_the_phase_names() {
        let j = phases_to_json(&[1, 2, 3, 4]);
        for (i, name) in SHARD_PHASE_NAMES.iter().enumerate() {
            assert_eq!(
                j.get(name).and_then(crate::json::Json::as_u64),
                Some(i as u64 + 1)
            );
        }
    }
}
