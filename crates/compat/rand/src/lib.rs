//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API, implementing exactly the surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal, self-contained reimplementation instead of the
//! real crate: [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64), the
//! [`RngCore`] / [`SeedableRng`] traits, and the [`Rng`] extension trait
//! with `gen`, `gen_range`, `gen_bool`, and `fill`.
//!
//! Sequences differ from the real `rand` crate's `StdRng` (which is
//! ChaCha12-based); every consumer in this workspace only requires a
//! deterministic, well-mixed stream, not a specific one. The generator is
//! deterministic across platforms and Rust versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u32`/`u64` values and random bytes.
///
/// Object-safe; `&mut dyn RngCore` is the erased form the workspace's
/// traffic patterns accept.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it into a full seed
    /// with splitmix64 (the conventional `rand` behaviour).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (i, b) in chunk.iter_mut().enumerate() {
                *b = (x >> (8 * i)) as u8;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the uniform "standard" distribution via
/// [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Types uniformly samplable from a bounded range via [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a value in `[start, end)`, or `[start, end]` when
    /// `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                start: $t,
                end: $t,
                inclusive: bool,
            ) -> $t {
                let span =
                    (end as i128 - start as i128) as u128 + u128::from(inclusive);
                (start as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64, _incl: bool) -> f64 {
        start + f64::sample(rng) * (end - start)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_range(rng, start, end, true)
    }
}

/// Uniform value in `[0, span)` by widening multiplication (Lemire's
/// method, without the rejection step: the bias at 64-bit width is
/// negligible for simulation workloads).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128) * span) >> 64
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`f64` is uniform in
    /// `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic across platforms; **not** the ChaCha12 generator of
    /// the real `rand` crate, and not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[8 * i..8 * (i + 1)]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro requires a nonzero state; the all-zero seed maps to
            // an arbitrary fixed nonzero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&x[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_samples_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(0..2);
            assert!(v < 2);
            let w: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn fill_bytes_fills_oddly_sized_buffers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(4);
        let erased: &mut dyn RngCore = &mut rng;
        let v = erased.gen_range(0..10usize);
        assert!(v < 10);
        let f: f64 = erased.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
