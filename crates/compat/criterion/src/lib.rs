//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! crate API, implementing exactly the surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal reimplementation: [`Criterion`], benchmark groups
//! with `sample_size` / `bench_function` / `finish`, [`Bencher::iter`],
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is plain wall-clock sampling (warmup, then `sample_size`
//! samples, reporting min / mean / max per-iteration time) with no
//! statistical analysis, plots, or baselines. Like the real crate, when
//! the binary is invoked without `--bench` (as `cargo test` does for
//! `harness = false` bench targets) every benchmark body runs exactly
//! once as a smoke test instead of being timed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, id, 100, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion.bench_mode, &full, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; no summary is built).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the body
/// to measure.
pub struct Bencher {
    mode: BenchMode,
    /// Per-iteration durations recorded by [`Bencher::iter`].
    samples: Vec<Duration>,
}

enum BenchMode {
    /// Run the body once, untimed (`cargo test`).
    Smoke,
    /// Time `sample_size` samples (`cargo bench`).
    Timed { sample_size: usize },
}

impl Bencher {
    /// Measures `body`, consuming its output through
    /// [`std::hint::black_box`] so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(body());
            }
            BenchMode::Timed { sample_size } => {
                // Warm up and calibrate how many iterations fill one
                // sample window.
                let start = Instant::now();
                black_box(body());
                let first = start.elapsed().max(Duration::from_nanos(1));
                let iters = (SAMPLE_TARGET.as_nanos() / first.as_nanos()).clamp(1, 1_000_000);
                for _ in 0..sample_size {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(body());
                    }
                    self.samples.push(start.elapsed() / iters as u32);
                }
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(bench_mode: bool, id: &str, sample_size: usize, mut f: F) {
    if !bench_mode {
        let mut b = Bencher {
            mode: BenchMode::Smoke,
            samples: Vec::new(),
        };
        f(&mut b);
        println!("test {id} ... ok (smoke)");
        return;
    }
    let mut b = Bencher {
        mode: BenchMode::Timed { sample_size },
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{id:<40} time: [{min:>12?} {mean:>12?} {max:>12?}]  ({n} samples)",
        n = b.samples.len()
    );
}

/// Binds benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut calls = 0;
        let mut b = Bencher {
            mode: BenchMode::Smoke,
            samples: Vec::new(),
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut b = Bencher {
            mode: BenchMode::Timed { sample_size: 3 },
            samples: Vec::new(),
        };
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion { bench_mode: false };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1u32));
        g.finish();
        c.bench_function("ungrouped", |b| b.iter(|| 1u32));
    }
}
