//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! crate API, implementing exactly the surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal reimplementation: a random-sampling test runner
//! (no shrinking), the [`strategy::Strategy`] trait with range / tuple /
//! `prop_map` / collection combinators, [`any`](strategy::any) over the
//! primitive types the tests draw, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Each test runs [`test_runner::ProptestConfig::cases`] random cases from
//! a seed derived deterministically from the test's name, so failures are
//! reproducible run-to-run. On failure the runner panics with the case
//! number and assertion message (there is no shrinking phase).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies: composable descriptions of how to draw random values.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of type [`Strategy::Value`].
    ///
    /// Unlike the real proptest (which builds shrinkable value trees),
    /// this shim's strategies sample a plain value directly.
    pub trait Strategy {
        /// The type of value this strategy draws.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps drawn values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// Types with a canonical "draw anything" strategy, used by [`any`].
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )+};
    }

    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut StdRng) -> [u8; N] {
            let mut out = [0u8; N];
            rng.fill(&mut out[..]);
            out
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Draws an arbitrary value of type `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Draws a `Vec` whose length is uniform in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The test runner: configuration, case errors, and the driving loop.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration, set via
    /// `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful random cases each test must pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this input out; the case is retried
        /// with a fresh draw and does not count toward the case budget.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant (used by the `prop_assert*` macros).
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// Builds the rejection variant (used by `prop_assume!`).
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// Maximum rejected draws tolerated across a whole test before the
    /// runner gives up (mirrors proptest's global rejection cap).
    const MAX_GLOBAL_REJECTS: u32 = 65_536;

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `body` against `config.cases` random inputs drawn from a
    /// generator seeded deterministically from `name`.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when too many cases are rejected.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let seed = 0xA270_1EE7_0000_0000u64 ^ fnv1a(name);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut passed = 0u32;
        let mut rejects = 0u32;
        while passed < config.cases {
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects < MAX_GLOBAL_REJECTS,
                        "proptest {name}: too many rejected cases \
                         ({rejects} rejects, {passed} passed; seed {seed:#x})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name}: case {case} failed (seed {seed:#x}):\n{msg}",
                        case = passed + 1
                    );
                }
            }
        }
    }
}

/// Declares property tests.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by one
/// or more `fn name(pat in strategy, ...) { body }` items; each expands to
/// a `#[test]` running the body against random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), __rng);
                )+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (retried with a fresh draw) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..6, y in 1u8..=6) {
            prop_assert!(x < 6);
            prop_assert!((1..=6).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0usize..4, 0u32..32).prop_map(|(a, b)| a as u32 + b),
        ) {
            prop_assert!(pair < 36);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in collection::vec(any::<u32>(), 1..12),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 12);
            prop_assert_eq!(v.len(), v.iter().count());
        }

        #[test]
        fn assume_filters_draws(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0, "x was {}", x);
        }
    }

    #[test]
    fn default_config_is_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    #[should_panic(expected = "case ")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x is only {}", x);
            }
        }
        always_fails();
    }
}
