//! The per-flit router energy model and its least-squares fit.

use anton_analysis::fit::least_squares;
use anton_sim::params::EnergyParams;

use crate::experiment::EnergyMeasurement;

/// The fitted energy model `E = c₀ + c₁·h + (c₂ + c₃·n)(a/r)` pJ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Data-independent per-flit energy `c₀` (pJ).
    pub fixed_pj: f64,
    /// Energy per datapath bit flip `c₁` (pJ).
    pub per_flip_pj: f64,
    /// Activation energy `c₂` (pJ).
    pub activation_pj: f64,
    /// Activation energy per set payload bit `c₃` (pJ).
    pub per_set_bit_pj: f64,
}

impl EnergyModel {
    /// The paper's fitted coefficients: `E = 42.7 + 0.837h + (34.4 + 0.250n)(a/r)`.
    pub fn paper() -> EnergyModel {
        EnergyModel {
            fixed_pj: 42.7,
            per_flip_pj: 0.837,
            activation_pj: 34.4,
            per_set_bit_pj: 0.250,
        }
    }

    /// Predicted per-flit energy (pJ) for mean flip count `h`, mean set
    /// payload bits `n`, and activations-per-flit `a/r`.
    pub fn predict(&self, h: f64, n: f64, a_over_r: f64) -> f64 {
        self.fixed_pj
            + self.per_flip_pj * h
            + (self.activation_pj + self.per_set_bit_pj * n) * a_over_r
    }

    /// Fits the model to a set of measurements by linear least squares over
    /// the regressors `[1, h, a/r, n·(a/r)]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four linearly independent measurements are
    /// provided (the paper varies payload pattern and injection rate to
    /// span the space).
    pub fn fit(measurements: &[EnergyMeasurement]) -> EnergyModel {
        assert!(
            measurements.len() >= 4,
            "need at least four measurements to fit"
        );
        let xs: Vec<Vec<f64>> = measurements
            .iter()
            .map(|m| vec![1.0, m.h_mean, m.a_over_r, m.n_mean * m.a_over_r])
            .collect();
        let ys: Vec<f64> = measurements.iter().map(|m| m.energy_pj_per_flit).collect();
        let beta = least_squares(&xs, &ys);
        EnergyModel {
            fixed_pj: beta[0],
            per_flip_pj: beta[1],
            activation_pj: beta[2],
            per_set_bit_pj: beta[3],
        }
    }

    /// Root-mean-square prediction error over a measurement set.
    pub fn rms_error(&self, measurements: &[EnergyMeasurement]) -> f64 {
        let se: f64 = measurements
            .iter()
            .map(|m| {
                let e = self.predict(m.h_mean, m.n_mean, m.a_over_r) - m.energy_pj_per_flit;
                e * e
            })
            .sum();
        (se / measurements.len() as f64).sqrt()
    }
}

impl From<EnergyParams> for EnergyModel {
    fn from(p: EnergyParams) -> EnergyModel {
        EnergyModel {
            fixed_pj: p.fixed_pj,
            per_flip_pj: p.per_flip_pj,
            activation_pj: p.activation_pj,
            per_set_bit_pj: p.per_set_bit_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(model: &EnergyModel) -> Vec<EnergyMeasurement> {
        let mut out = Vec::new();
        for &h in &[0.0, 32.0, 64.0, 128.0] {
            for &n in &[0.0, 64.0, 128.0] {
                for &aor in &[0.2, 0.5, 1.0] {
                    out.push(EnergyMeasurement {
                        rate: 0.5,
                        h_mean: h,
                        n_mean: n,
                        a_over_r: aor,
                        energy_pj_per_flit: model.predict(h, n, aor),
                    });
                }
            }
        }
        out
    }

    #[test]
    fn fit_recovers_paper_coefficients() {
        let truth = EnergyModel::paper();
        let fitted = EnergyModel::fit(&synthetic(&truth));
        assert!((fitted.fixed_pj - 42.7).abs() < 1e-9);
        assert!((fitted.per_flip_pj - 0.837).abs() < 1e-9);
        assert!((fitted.activation_pj - 34.4).abs() < 1e-9);
        assert!((fitted.per_set_bit_pj - 0.250).abs() < 1e-9);
        assert!(fitted.rms_error(&synthetic(&truth)) < 1e-9);
    }

    #[test]
    fn energy_flat_below_half_rate_falls_above() {
        // With a = min(r, 1-r) maximized, a/r = 1 for r <= 0.5 and falls as
        // (1-r)/r beyond — the Figure 13 shape.
        let m = EnergyModel::paper();
        let e = |r: f64| {
            let aor = (r.min(1.0 - r) / r).max(0.0);
            m.predict(64.0, 64.0, aor)
        };
        assert!((e(0.25) - e(0.5)).abs() < 1e-9, "flat below r=0.5");
        assert!(e(0.75) < e(0.5), "energy falls beyond r=0.5");
        assert!(e(1.0) < e(0.75));
    }
}
