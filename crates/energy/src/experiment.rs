//! The router-energy measurement procedure (Section 4.5).
//!
//! A single processor core streams single-flit packets across the on-chip
//! mesh without contention, at a controlled injection rate `r` and maximized
//! activation rate `a = min(r, 1−r)`. Power is "measured" (from the
//! simulator's activity counters) for a short route and a long route; the
//! difference, divided by the route-length difference and the flit count,
//! isolates the per-flit energy of a single router hop.

use anton_core::chip::LocalEndpointId;
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::topology::{NodeId, TorusShape};
use anton_sim::driver::{PayloadKind, RateDriver};
use anton_sim::params::SimParams;
use anton_sim::sim::{RunOutcome, Sim};

/// One energy measurement point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyMeasurement {
    /// Injection rate `r` in flits per cycle.
    pub rate: f64,
    /// Mean Hamming distance between successive valid flits.
    pub h_mean: f64,
    /// Mean set payload bits per flit.
    pub n_mean: f64,
    /// Activations per flit (`a/r`).
    pub a_over_r: f64,
    /// Isolated per-router-hop energy per flit (pJ).
    pub energy_pj_per_flit: f64,
}

/// Endpoints whose host routers are 1 and 6 mesh hops from endpoint 0's
/// router under the default layout (endpoint `e` sits on router index `e`).
const SHORT_DST: u8 = 1; // R(1,0): 2 routers on the path
const LONG_DST: u8 = 15; // R(3,3): 7 routers on the path

fn run_route(
    dst: u8,
    rate: (u32, u32),
    payload: PayloadKind,
    packets: u64,
    seed: u64,
) -> (anton_sim::sim::EnergyCounters, u64, usize) {
    // A single-node machine: all routes stay on the mesh.
    let cfg = MachineConfig::new(TorusShape::new(1, 1, 1));
    let params = SimParams {
        track_energy: true,
        ..SimParams::default()
    };
    let mut sim = Sim::builder().config(cfg.clone()).params(params).build();
    let src = GlobalEndpoint {
        node: NodeId(0),
        ep: LocalEndpointId(0),
    };
    let dst_ep = GlobalEndpoint {
        node: NodeId(0),
        ep: LocalEndpointId(dst),
    };
    let mut driver = RateDriver::new(src, dst_ep, rate.0, rate.1, payload, packets, seed);
    let outcome = sim.run(&mut driver, packets * 64 + 100_000);
    assert_eq!(
        outcome,
        RunOutcome::Completed,
        "energy stream did not drain"
    );
    let src_r = cfg.chip.endpoint_router(LocalEndpointId(0));
    let dst_r = cfg.chip.endpoint_router(LocalEndpointId(dst));
    let routers = cfg.dir_order.router_path(src_r, dst_r).len();
    (sim.router_energy(), packets, routers)
}

/// Measures per-router-hop, per-flit energy at injection rate
/// `rate = (num, den)` with the given payload pattern, using the
/// two-route subtraction of Section 4.5.
pub fn measure_rate(
    rate: (u32, u32),
    payload: PayloadKind,
    packets: u64,
    energy: &anton_sim::params::EnergyParams,
) -> EnergyMeasurement {
    let (short, n_short, r_short) = run_route(SHORT_DST, rate, payload, packets, 0xE);
    let (long, n_long, r_long) = run_route(LONG_DST, rate, payload, packets, 0xE);
    assert_eq!(n_short, n_long);
    assert!(r_long > r_short, "route lengths must differ");
    let hop_diff = (r_long - r_short) as f64;
    let flits = packets as f64;
    let e_short = short.energy_pj(energy);
    let e_long = long.energy_pj(energy);
    let energy_pj_per_flit = (e_long - e_short) / hop_diff / flits;
    // Per-hop activity statistics, from the differential counters.
    let d_flits = (long.flits - short.flits) as f64 / hop_diff;
    let d_flips = (long.flips - short.flips) as f64 / hop_diff;
    let d_acts = (long.activations.saturating_sub(short.activations)) as f64 / hop_diff;
    let d_bits = (long.set_bits.saturating_sub(short.set_bits)) as f64 / hop_diff;
    EnergyMeasurement {
        rate: f64::from(rate.0) / f64::from(rate.1),
        h_mean: d_flips / d_flits,
        // n is the mean set payload bits per (activating) flit; with the
        // stream never activating (r = 1) the term vanishes.
        n_mean: if d_acts > 1e-9 { d_bits / d_acts } else { 0.0 },
        a_over_r: d_acts / d_flits,
        energy_pj_per_flit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_sim::params::EnergyParams;

    #[test]
    fn zero_payload_stream_has_no_flips() {
        let m = measure_rate((1, 2), PayloadKind::Zeros, 400, &EnergyParams::default());
        // Identical headers and zero payloads: no datapath flips except the
        // one-time startup transition at each port.
        assert!(m.h_mean.abs() < 0.2, "h = {}", m.h_mean);
        assert!(m.n_mean.abs() < 1e-9);
        // Alternating valid/idle at r = 0.5: one activation per flit.
        assert!((m.a_over_r - 1.0).abs() < 0.05, "a/r = {}", m.a_over_r);
    }

    #[test]
    fn ones_payload_counts_set_bits() {
        let m = measure_rate((1, 2), PayloadKind::Ones, 400, &EnergyParams::default());
        assert!((m.n_mean - 128.0).abs() < 1e-9, "n = {}", m.n_mean);
        // Payload constant between flits: no steady-state flips (startup
        // transition only).
        assert!(m.h_mean.abs() < 1.0, "h = {}", m.h_mean);
    }

    #[test]
    fn random_payload_flips_about_half_the_bits() {
        let m = measure_rate((1, 2), PayloadKind::Random, 2000, &EnergyParams::default());
        assert!((m.h_mean - 64.0).abs() < 6.0, "h = {}", m.h_mean);
        assert!((m.n_mean - 64.0).abs() < 6.0, "n = {}", m.n_mean);
    }

    #[test]
    fn full_rate_stream_never_reactivates() {
        let m = measure_rate((1, 1), PayloadKind::Zeros, 400, &EnergyParams::default());
        assert!(m.a_over_r < 0.05, "a/r = {}", m.a_over_r);
    }

    #[test]
    fn measured_energy_matches_charged_model() {
        // The differential measurement must reproduce the coefficients the
        // simulator charges.
        let p = EnergyParams::default();
        let m = measure_rate((1, 2), PayloadKind::Zeros, 800, &p);
        let predicted = p.fixed_pj + p.activation_pj * m.a_over_r;
        assert!(
            (m.energy_pj_per_flit - predicted).abs() / predicted < 0.05,
            "measured {} vs predicted {predicted}",
            m.energy_pj_per_flit
        );
    }
}
