//! # anton-energy
//!
//! Router energy model and measurement methodology of Section 4.5 of
//! *"Unifying on-chip and inter-node switching within the Anton 2 network"*.
//!
//! The paper measures per-flit router energy by streaming single-flit
//! packets from one core over two on-chip routes of different lengths,
//! subtracting the two power measurements, and dividing by the route-length
//! difference. It then fits the model
//!
//! ```text
//! E = c₀ + c₁·h + (c₂ + c₃·n)(a/r)  pJ
//! ```
//!
//! where `h` is the mean Hamming distance between successive valid flits,
//! `n` the mean set payload bits, `r` the injection rate, and `a` the
//! activation rate (idle→valid transitions). This crate reproduces the
//! methodology end-to-end on the simulator: [`experiment`] produces the
//! measurements and [`model`] fits the coefficients back out of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiment;
pub mod model;

pub use experiment::{measure_rate, EnergyMeasurement};
pub use model::EnergyModel;
