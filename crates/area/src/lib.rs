//! # anton-area
//!
//! Silicon-area model of the Anton 2 network components, reproducing
//! Tables 1 and 2 of *"Unifying on-chip and inter-node switching within the
//! Anton 2 network"* and exposing the VC-count ablation the paper's
//! deadlock-avoidance algorithm motivates.
//!
//! The model is bottom-up where the paper's architecture determines the
//! scaling — queue area is proportional to buffered bits (VCs × depth ×
//! flit width) and arbiter area to stored weight/accumulator bits — and
//! uses calibrated per-component constants for the categories the paper
//! reports only as totals (link logic, configuration, debug, reduction,
//! multicast tables, miscellaneous).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use anton_core::chip::{ChanId, ChipLayout, LinkGroup, LocalAttach, MeshCoord};
use anton_core::vc::VcPolicy;

/// Area categories of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// VC input buffers (dominant, ∝ VC count).
    Queues,
    /// In-network reduction acceleration (channel adapters; constant —
    /// the feature itself is out of scope, deferred by the paper).
    Reduction,
    /// Torus-channel framing, scrambling, CRC, link-level retry.
    Link,
    /// Configuration registers and performance counters.
    Configuration,
    /// In-silicon debug/monitoring logic.
    Debug,
    /// Credit counters, crossbars, parity, minor logic.
    Miscellaneous,
    /// Multicast tables (endpoint and channel adapters).
    Multicast,
    /// Inverse-weighted arbiters (weight/accumulator storage + priority
    /// arbiter logic).
    Arbiters,
}

impl Category {
    /// All categories in Table 2's order.
    pub const ALL: [Category; 8] = [
        Category::Queues,
        Category::Reduction,
        Category::Link,
        Category::Configuration,
        Category::Debug,
        Category::Miscellaneous,
        Category::Multicast,
        Category::Arbiters,
    ];

    /// Display name used in the table output.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Queues => "Queues",
            Category::Reduction => "Reduction",
            Category::Link => "Link",
            Category::Configuration => "Configuration",
            Category::Debug => "Debug",
            Category::Miscellaneous => "Miscellaneous",
            Category::Multicast => "Multicast",
            Category::Arbiters => "Arbiters",
        }
    }
}

/// Component types of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// On-chip mesh router (16 per node).
    Router,
    /// Endpoint adapter (23 per node in the Anton 2 ASIC).
    Endpoint,
    /// Torus-channel adapter (12 per node).
    Channel,
}

impl Component {
    /// All component types.
    pub const ALL: [Component; 3] = [Component::Router, Component::Endpoint, Component::Channel];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Router => "Router",
            Component::Endpoint => "Endpoint adapter",
            Component::Channel => "Channel adapter",
        }
    }
}

/// Area model parameters. Areas are in arbitrary units; only ratios are
/// meaningful, and [`AreaModel::die_fraction`] scales against the
/// non-network die area.
#[derive(Debug, Clone)]
pub struct AreaParams {
    /// Flit width in bits.
    pub flit_bits: f64,
    /// Router/adapter on-chip buffer depth per VC, in flits.
    pub onchip_depth: f64,
    /// Torus-side buffer depth per VC at channel adapters, in flits
    /// (covers the external-link round trip).
    pub torus_depth: f64,
    /// Area per buffered bit.
    pub per_queue_bit: f64,
    /// Area per stored arbiter bit (weights + accumulators + update logic,
    /// amortized per bit).
    pub per_arbiter_storage_bit: f64,
    /// Area of one prioritized arbiter's combinational logic per input.
    pub arbiter_logic_per_input: f64,
    /// Constant arbiter area per channel adapter (the small serializer VC
    /// arbiter).
    pub chan_arbiter: f64,
    /// Constant arbiter area per endpoint adapter.
    pub ep_arbiter: f64,
    /// Inverse-weight bits M.
    pub m_bits: f64,
    /// Traffic patterns stored per arbiter input.
    pub num_patterns: f64,
    /// Constant per-component areas for the calibrated categories,
    /// `(router, endpoint, channel)` each.
    pub reduction: [f64; 3],
    /// Link-layer logic.
    pub link: [f64; 3],
    /// Configuration registers.
    pub configuration: [f64; 3],
    /// Debug logic.
    pub debug: [f64; 3],
    /// Miscellaneous logic.
    pub miscellaneous: [f64; 3],
    /// Multicast tables.
    pub multicast: [f64; 3],
    /// Non-network die area (same units), calibrated so the network is
    /// just under 10% of the die as the paper reports.
    pub non_network_die: f64,
}

impl Default for AreaParams {
    /// Constants calibrated against Tables 1–2 at the Anton configuration
    /// (see EXPERIMENTS.md for the paper-vs-model comparison).
    fn default() -> AreaParams {
        AreaParams {
            flit_bits: 192.0,
            onchip_depth: 8.0,
            torus_depth: 48.0,
            per_queue_bit: 1.0,
            per_arbiter_storage_bit: 23.9,
            arbiter_logic_per_input: 127.5,
            chan_arbiter: 777.0,
            ep_arbiter: 100.0,
            m_bits: 5.0,
            num_patterns: 2.0,
            reduction: [0.0, 0.0, 37_280.0],
            link: [0.0, 0.0, 34_560.0],
            configuration: [9_610.0, 5_065.0, 10_870.0],
            debug: [8_740.0, 5_065.0, 8_930.0],
            miscellaneous: [12_520.0, 2_025.0, 7_765.0],
            multicast: [0.0, 6_480.0, 9_710.0],
            non_network_die: 46_000_000.0,
        }
    }
}

/// The evaluated area model for one configuration.
#[derive(Debug, Clone)]
pub struct AreaModel {
    params: AreaParams,
    chip: ChipLayout,
    policy: VcPolicy,
    num_endpoints: f64,
}

impl AreaModel {
    /// Builds the model for the Anton 2 ASIC: 23 endpoint adapters and the
    /// n+1-VC promotion policy.
    pub fn anton() -> AreaModel {
        AreaModel::new(AreaParams::default(), ChipLayout::new(23), VcPolicy::Anton)
    }

    /// Builds a model with explicit parameters, layout, and VC policy.
    pub fn new(params: AreaParams, chip: ChipLayout, policy: VcPolicy) -> AreaModel {
        let num_endpoints = f64::from(chip.num_endpoints());
        AreaModel {
            params,
            chip,
            policy,
            num_endpoints,
        }
    }

    fn vcs(&self, group: LinkGroup) -> f64 {
        // Two traffic classes.
        2.0 * f64::from(self.policy.num_vcs(group))
    }

    /// Total queue bits in all 16 routers: one input buffer per router port,
    /// sized by the port's link group.
    fn router_queue_area(&self) -> f64 {
        let p = &self.params;
        let mut bits = 0.0;
        for r in MeshCoord::all() {
            for attach in self.chip.router_ports(r) {
                let group = match attach {
                    LocalAttach::Mesh(_) | LocalAttach::Endpoint(_) => LinkGroup::M,
                    LocalAttach::Skip | LocalAttach::Chan(_) => LinkGroup::T,
                };
                bits += self.vcs(group) * p.onchip_depth * p.flit_bits;
            }
        }
        bits * p.per_queue_bit
    }

    /// Queue area of all 12 channel adapters: a router-side input buffer
    /// (on-chip depth) plus a deep torus-side buffer.
    fn channel_queue_area(&self) -> f64 {
        let p = &self.params;
        let per_adapter = self.vcs(LinkGroup::T) * (p.onchip_depth + p.torus_depth) * p.flit_bits;
        12.0 * per_adapter * p.per_queue_bit
    }

    /// Queue area of the endpoint adapters: one VC per traffic class.
    fn endpoint_queue_area(&self) -> f64 {
        let p = &self.params;
        self.num_endpoints * 2.0 * p.onchip_depth * p.flit_bits * p.per_queue_bit
    }

    /// Arbiter area of the routers: one inverse-weighted arbiter per output
    /// port; roughly three-quarters storage (weights, accumulators, update
    /// logic), one quarter prioritized-arbiter logic (Section 4.4).
    fn router_arbiter_area(&self) -> f64 {
        let p = &self.params;
        let mut area = 0.0;
        for r in MeshCoord::all() {
            let k = self.chip.router_ports(r).len() as f64;
            // One arbiter per output port, k inputs each: per input, the
            // stored weights (patterns x M bits) and the (M+1)-bit
            // accumulator, plus the prioritized arbiter's per-input logic.
            let per_arbiter =
                k * (p.num_patterns * p.m_bits + (p.m_bits + 1.0)) * p.per_arbiter_storage_bit
                    + k * p.arbiter_logic_per_input;
            area += k * per_arbiter;
        }
        area
    }

    /// Area of `(component, category)` in model units.
    pub fn area(&self, component: Component, category: Category) -> f64 {
        let p = &self.params;
        let idx = match component {
            Component::Router => 0,
            Component::Endpoint => 1,
            Component::Channel => 2,
        };
        let count = match component {
            Component::Router => 16.0,
            Component::Endpoint => self.num_endpoints,
            Component::Channel => 12.0,
        };
        match category {
            Category::Queues => match component {
                Component::Router => self.router_queue_area(),
                Component::Endpoint => self.endpoint_queue_area(),
                Component::Channel => self.channel_queue_area(),
            },
            Category::Arbiters => match component {
                Component::Router => self.router_arbiter_area(),
                Component::Endpoint => count * p.ep_arbiter,
                Component::Channel => count * p.chan_arbiter,
            },
            Category::Reduction => count * p.reduction[idx],
            Category::Link => count * p.link[idx],
            Category::Configuration => count * p.configuration[idx],
            Category::Debug => count * p.debug[idx],
            Category::Miscellaneous => count * p.miscellaneous[idx],
            Category::Multicast => count * p.multicast[idx],
        }
    }

    /// Total area of a component type (all instances).
    pub fn component_area(&self, component: Component) -> f64 {
        Category::ALL.iter().map(|c| self.area(component, *c)).sum()
    }

    /// Total network area.
    pub fn network_area(&self) -> f64 {
        Component::ALL.iter().map(|c| self.component_area(*c)).sum()
    }

    /// A component type's contribution to total die area (%), Table 1.
    pub fn die_fraction(&self, component: Component) -> f64 {
        100.0 * self.component_area(component) / (self.network_area() + self.params.non_network_die)
    }

    /// Percentage of network area for `(component, category)`, Table 2.
    pub fn network_percent(&self, component: Component, category: Category) -> f64 {
        100.0 * self.area(component, category) / self.network_area()
    }

    /// Row total of Table 2 (category across all components).
    pub fn category_percent(&self, category: Category) -> f64 {
        Component::ALL
            .iter()
            .map(|c| self.network_percent(*c, category))
            .sum()
    }

    /// The configured VC policy.
    pub fn policy(&self) -> VcPolicy {
        self.policy
    }

    /// Number of channel adapters modeled (always 12).
    pub fn num_channel_adapters(&self) -> usize {
        ChanId::all().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_is_under_ten_percent_of_die() {
        let m = AreaModel::anton();
        let total: f64 = Component::ALL.iter().map(|c| m.die_fraction(*c)).sum();
        assert!(total < 10.0, "network at {total}% of die");
        assert!(total > 7.0, "network implausibly small at {total}%");
    }

    #[test]
    fn table1_shape_holds() {
        // Channel adapters > routers > endpoint adapters (Table 1:
        // 4.7 / 3.4 / 1.1).
        let m = AreaModel::anton();
        let r = m.die_fraction(Component::Router);
        let e = m.die_fraction(Component::Endpoint);
        let c = m.die_fraction(Component::Channel);
        assert!(c > r && r > e, "die fractions r={r:.2} e={e:.2} c={c:.2}");
        assert!((r - 3.4).abs() < 1.0, "router {r:.2}% vs paper 3.4%");
        assert!((e - 1.1).abs() < 0.6, "endpoint {e:.2}% vs paper 1.1%");
        assert!((c - 4.7).abs() < 1.2, "channel {c:.2}% vs paper 4.7%");
    }

    #[test]
    fn queues_dominate_and_arbiters_are_small() {
        let m = AreaModel::anton();
        let queues = m.category_percent(Category::Queues);
        let arbiters = m.category_percent(Category::Arbiters);
        assert!(
            (queues - 46.6).abs() < 6.0,
            "queues {queues:.1}% vs paper 46.6%"
        );
        assert!(
            (arbiters - 5.4).abs() < 2.5,
            "arbiters {arbiters:.1}% vs paper 5.4%"
        );
        for cat in Category::ALL {
            assert!(
                m.category_percent(cat) < queues + 1e-9,
                "{} exceeds queues",
                cat.name()
            );
        }
        let total: f64 = Category::ALL.iter().map(|c| m.category_percent(*c)).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn arbiter_storage_dominates_arbiter_logic() {
        // "Approximately three-quarters of the arbiter area is dedicated to
        // storing the inverse-weight values, the accumulator values, and the
        // accumulator update logic."
        let p = AreaParams::default();
        let k = 6.0;
        let storage = k * (p.num_patterns * p.m_bits + p.m_bits + 1.0) * p.per_arbiter_storage_bit;
        let logic = k * p.arbiter_logic_per_input;
        let frac = storage / (storage + logic);
        assert!((frac - 0.75).abs() < 0.05, "storage fraction {frac:.2}");
    }

    #[test]
    fn baseline_vc_policy_inflates_queue_area() {
        // The 2n-VC baseline needs 6 T-group VCs instead of 4: T-group
        // buffers grow by exactly half — the motivation for the promotion
        // algorithm.
        let anton = AreaModel::anton();
        let baseline = AreaModel::new(
            AreaParams::default(),
            ChipLayout::new(23),
            VcPolicy::Baseline2n,
        );
        let ca = anton.area(Component::Channel, Category::Queues);
        let cb = baseline.area(Component::Channel, Category::Queues);
        assert!(
            (cb / ca - 1.5).abs() < 1e-9,
            "T-group buffers grow by exactly 6/4"
        );
        let a = anton.area(Component::Router, Category::Queues);
        let b = baseline.area(Component::Router, Category::Queues);
        // Router ports are mostly M-group, so routers grow less than the
        // all-T channel adapters.
        assert!(b > a * 1.05, "router queues must grow: {b:.0} vs {a:.0}");
        assert!(baseline.network_area() > anton.network_area() * 1.10);
    }

    #[test]
    fn areas_are_finite_and_positive() {
        let m = AreaModel::anton();
        for comp in Component::ALL {
            for cat in Category::ALL {
                let a = m.area(comp, cat);
                assert!(a.is_finite() && a >= 0.0, "{comp:?}/{cat:?} = {a}");
            }
        }
        assert!(m.network_area() > 0.0);
        assert_eq!(m.num_channel_adapters(), 12);
    }
}
