//! MD-like multicast workloads (Section 2.3, Figure 3).
//!
//! In molecular dynamics, broadcasting a particle's position to the
//! endpoints of its neighboring nodes is an extremely common communication
//! pattern. This module builds the halo destination sets and the per-node
//! multicast groups an MD time step would load into the multicast tables at
//! initialization.

use anton_core::chip::LocalEndpointId;
use anton_core::config::MachineConfig;
use anton_core::multicast::{DestSet, McGroup, McGroupId};
use anton_core::routing::DimOrder;
use anton_core::topology::{Dim, NodeCoord, Slice};

use crate::patterns::offset_node;

/// Shape of a halo destination set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloSpec {
    /// Neighborhood radius in nodes (1 for the 3×3(×3) halo).
    pub radius: u8,
    /// If set, restrict the halo to the plane normal to this dimension
    /// (Figure 3 shows one plane of the torus).
    pub plane_normal: Option<Dim>,
    /// Endpoint copies written per destination node.
    pub endpoints_per_node: u8,
}

impl Default for HaloSpec {
    fn default() -> HaloSpec {
        HaloSpec {
            radius: 1,
            plane_normal: None,
            endpoints_per_node: 1,
        }
    }
}

/// Builds the halo destination set around `src`.
///
/// # Panics
///
/// Panics if the radius is zero or the endpoint copies exceed the node's
/// endpoint count.
pub fn halo_dest_set(cfg: &MachineConfig, src: NodeCoord, spec: HaloSpec) -> DestSet {
    assert!(spec.radius > 0, "halo radius must be at least 1");
    assert!(
        (spec.endpoints_per_node as usize) <= cfg.endpoints_per_node(),
        "halo endpoint copies exceed endpoints per node"
    );
    let r = i32::from(spec.radius);
    let range = |d: Dim| -> Vec<i32> {
        if spec.plane_normal == Some(d) {
            vec![0]
        } else {
            (-r..=r).collect()
        }
    };
    let mut set = DestSet::new();
    for dx in range(Dim::X) {
        for dy in range(Dim::Y) {
            for dz in range(Dim::Z) {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let node = offset_node(cfg, src, [dx, dy, dz]);
                if node == src {
                    continue; // wraparound alias on tiny tori
                }
                for e in 0..spec.endpoints_per_node {
                    set.add(node, LocalEndpointId(e));
                }
            }
        }
    }
    set
}

/// The two alternating tree variants Figure 3 illustrates: opposite
/// dimension orders on opposite slices, so consecutive packets balance the
/// load on the most heavily utilized torus channels.
pub fn alternating_variants() -> [(DimOrder, Slice); 2] {
    [
        (DimOrder::new([Dim::X, Dim::Y, Dim::Z]), Slice(0)),
        (DimOrder::new([Dim::Z, Dim::Y, Dim::X]), Slice(1)),
    ]
}

/// Builds one multicast group per node of the machine (group id = node id),
/// each broadcasting to its halo — the full table set an MD simulation loads
/// at initialization.
pub fn build_halo_groups(
    cfg: &MachineConfig,
    spec: HaloSpec,
    variants: &[(DimOrder, Slice)],
) -> Vec<McGroup> {
    cfg.shape
        .nodes()
        .map(|src| {
            let dests = halo_dest_set(cfg, src, spec);
            McGroup::build(
                &cfg.shape,
                McGroupId(cfg.shape.id(src).0),
                src,
                dests,
                variants,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::topology::TorusShape;

    #[test]
    fn plane_halo_has_eight_nodes() {
        let cfg = MachineConfig::new(TorusShape::cube(8));
        let spec = HaloSpec {
            plane_normal: Some(Dim::Z),
            ..HaloSpec::default()
        };
        let set = halo_dest_set(&cfg, NodeCoord::new(4, 4, 4), spec);
        assert_eq!(set.num_nodes(), 8);
    }

    #[test]
    fn full_halo_has_26_nodes() {
        let cfg = MachineConfig::new(TorusShape::cube(8));
        let set = halo_dest_set(&cfg, NodeCoord::new(0, 0, 0), HaloSpec::default());
        assert_eq!(set.num_nodes(), 26);
    }

    #[test]
    fn multicast_beats_unicast_for_full_halo() {
        let cfg = MachineConfig::new(TorusShape::cube(8));
        let src = NodeCoord::new(2, 2, 2);
        let dests = halo_dest_set(&cfg, src, HaloSpec::default());
        let group = McGroup::build(
            &cfg.shape,
            McGroupId(0),
            src,
            dests,
            &alternating_variants(),
        );
        // 26-node halo: unicast needs sum of min-hop distances
        // (6*1 + 12*2 + 8*3 = 54); the tree needs 26 edges, saving 28.
        assert_eq!(group.dests.unicast_torus_hops(&cfg.shape, src), 54);
        assert!((group.hops_saved(&cfg.shape) - 28.0).abs() < 1e-9);
    }

    #[test]
    fn per_node_groups_cover_machine() {
        let cfg = MachineConfig::new(TorusShape::cube(4));
        let groups = build_halo_groups(&cfg, HaloSpec::default(), &alternating_variants());
        assert_eq!(groups.len(), 64);
        for g in &groups {
            assert_eq!(g.trees.len(), 2);
            assert_eq!(g.dests.num_nodes(), 26);
        }
    }

    #[test]
    fn endpoint_copies_multiply() {
        let cfg = MachineConfig::new(TorusShape::cube(8));
        let spec = HaloSpec {
            endpoints_per_node: 4,
            ..HaloSpec::default()
        };
        let set = halo_dest_set(&cfg, NodeCoord::new(0, 0, 0), spec);
        assert_eq!(set.num_endpoints(), 26 * 4);
    }
}
