//! # anton-traffic
//!
//! Traffic patterns and workloads used by the Anton 2 network evaluation
//! (Section 4 of *"Unifying on-chip and inter-node switching within the
//! Anton 2 network"*):
//!
//! * [`patterns`] — uniform random, n-hop neighbor, tornado, reverse
//!   tornado, blends, and explicit node permutations;
//! * [`md`] — MD-like halo multicast workloads (Figure 3).
//!
//! All patterns implement [`anton_core::pattern::TrafficPattern`], serving
//! both the offline load analyses and the online simulation drivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod md;
pub mod patterns;

pub use md::{build_halo_groups, halo_dest_set, HaloSpec};
pub use patterns::{
    BitComplement, Blend, NHopNeighbor, NodePermutation, ReverseTornado, Tornado, Transpose,
    UniformRandom,
};
