//! The traffic patterns of the paper's evaluation (Section 4).
//!
//! * [`UniformRandom`] — every packet goes to a uniformly random destination
//!   on another node;
//! * [`NHopNeighbor`] — destinations at most `n` hops away along *each*
//!   dimension of the torus (Agarwal's neighbor traffic [2]);
//! * [`Tornado`] / [`ReverseTornado`] — the adversarial half-ring patterns
//!   of Section 4.2;
//! * [`Blend`] — a mixture of patterns with given weights, as blended in
//!   Figure 10;
//! * [`NodePermutation`] — an explicit node-level permutation (used for the
//!   worst-case analyses and tests).

use rand::Rng;
use rand::RngCore;

use anton_core::chip::LocalEndpointId;
use anton_core::config::{GlobalEndpoint, MachineConfig};
use anton_core::pattern::{Flow, TrafficPattern};
use anton_core::topology::{Dim, NodeCoord, NodeId};

fn wrap(shape_k: u8, base: u8, delta: i32) -> u8 {
    (i32::from(base) + delta).rem_euclid(i32::from(shape_k)) as u8
}

/// Offsets a node coordinate by `(dx, dy, dz)` with wraparound.
pub fn offset_node(cfg: &MachineConfig, c: NodeCoord, d: [i32; 3]) -> NodeCoord {
    NodeCoord::new(
        wrap(cfg.shape.k(Dim::X), c.x, d[0]),
        wrap(cfg.shape.k(Dim::Y), c.y, d[1]),
        wrap(cfg.shape.k(Dim::Z), c.z, d[2]),
    )
}

/// Uniform random traffic: each packet is sent to a random endpoint on a
/// random *other* node, without locality constraints.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformRandom;

impl TrafficPattern for UniformRandom {
    fn name(&self) -> String {
        "uniform".into()
    }

    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow> {
        let nodes = cfg.shape.num_nodes();
        let eps = cfg.endpoints_per_node();
        let rate = 1.0 / (((nodes - 1) * eps) as f64);
        let mut flows = Vec::with_capacity((nodes - 1) * eps);
        for node in 0..nodes {
            if node as u32 == src.node.0 {
                continue;
            }
            for e in 0..eps {
                flows.push(Flow {
                    dst: GlobalEndpoint {
                        node: NodeId(node as u32),
                        ep: LocalEndpointId(e as u8),
                    },
                    rate,
                });
            }
        }
        flows
    }

    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        rng: &mut dyn RngCore,
    ) -> GlobalEndpoint {
        let nodes = cfg.shape.num_nodes() as u32;
        let mut node = rng.gen_range(0..nodes - 1);
        if node >= src.node.0 {
            node += 1;
        }
        GlobalEndpoint {
            node: NodeId(node),
            ep: LocalEndpointId(rng.gen_range(0..cfg.endpoints_per_node()) as u8),
        }
    }
}

/// `n`-hop neighbor traffic: each packet travels to a random destination
/// node at most `n` hops away along each dimension of the torus (excluding
/// the source node itself).
#[derive(Debug, Clone, Copy)]
pub struct NHopNeighbor {
    /// Maximum hops per dimension.
    pub n: u8,
}

impl NHopNeighbor {
    /// Creates the pattern.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u8) -> NHopNeighbor {
        assert!(n > 0, "n-hop neighbor traffic needs n >= 1");
        NHopNeighbor { n }
    }

    /// The distinct destination nodes for a source node (wraparound can
    /// alias offsets on small tori, so this deduplicates).
    fn neighbor_nodes(&self, cfg: &MachineConfig, src: NodeCoord) -> Vec<NodeCoord> {
        let n = i32::from(self.n);
        let mut out = Vec::new();
        for dx in -n..=n {
            for dy in -n..=n {
                for dz in -n..=n {
                    let c = offset_node(cfg, src, [dx, dy, dz]);
                    if c != src && !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

impl TrafficPattern for NHopNeighbor {
    fn name(&self) -> String {
        format!("{}-hop-neighbor", self.n)
    }

    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow> {
        let src_c = cfg.node_coord(src);
        let nodes = self.neighbor_nodes(cfg, src_c);
        let eps = cfg.endpoints_per_node();
        let rate = 1.0 / ((nodes.len() * eps) as f64);
        nodes
            .iter()
            .flat_map(|c| {
                let node = cfg.shape.id(*c);
                (0..eps).map(move |e| Flow {
                    dst: GlobalEndpoint {
                        node,
                        ep: LocalEndpointId(e as u8),
                    },
                    rate,
                })
            })
            .collect()
    }

    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        rng: &mut dyn RngCore,
    ) -> GlobalEndpoint {
        let src_c = cfg.node_coord(src);
        let nodes = self.neighbor_nodes(cfg, src_c);
        let node = nodes[rng.gen_range(0..nodes.len())];
        GlobalEndpoint {
            node: cfg.shape.id(node),
            ep: LocalEndpointId(rng.gen_range(0..cfg.endpoints_per_node()) as u8),
        }
    }
}

/// Tornado traffic (Section 4.2): cores on node `(x, y, z)` send all of
/// their packets to the corresponding core on node
/// `(x + kx/2 − 1, y + ky/2 − 1, z + kz/2 − 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tornado;

/// Reverse tornado traffic: the diametric opposite of [`Tornado`] — cores on
/// `(x, y, z)` send to `(x − kx/2 + 1, y − ky/2 + 1, z − kz/2 + 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReverseTornado;

fn tornado_dst(cfg: &MachineConfig, src: GlobalEndpoint, sign: i32) -> GlobalEndpoint {
    let c = cfg.node_coord(src);
    let d = [
        sign * (i32::from(cfg.shape.k(Dim::X)) / 2 - 1),
        sign * (i32::from(cfg.shape.k(Dim::Y)) / 2 - 1),
        sign * (i32::from(cfg.shape.k(Dim::Z)) / 2 - 1),
    ];
    GlobalEndpoint {
        node: cfg.shape.id(offset_node(cfg, c, d)),
        ep: src.ep,
    }
}

impl TrafficPattern for Tornado {
    fn name(&self) -> String {
        "tornado".into()
    }

    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow> {
        vec![Flow {
            dst: tornado_dst(cfg, src, 1),
            rate: 1.0,
        }]
    }

    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        _rng: &mut dyn RngCore,
    ) -> GlobalEndpoint {
        tornado_dst(cfg, src, 1)
    }
}

impl TrafficPattern for ReverseTornado {
    fn name(&self) -> String {
        "reverse-tornado".into()
    }

    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow> {
        vec![Flow {
            dst: tornado_dst(cfg, src, -1),
            rate: 1.0,
        }]
    }

    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        _rng: &mut dyn RngCore,
    ) -> GlobalEndpoint {
        tornado_dst(cfg, src, -1)
    }
}

/// A weighted mixture of traffic patterns (Figure 10 blends tornado and
/// reverse tornado). Sampling first draws a component by weight; the flow
/// matrix is the weighted sum of the components'.
pub struct Blend {
    components: Vec<(Box<dyn TrafficPattern>, f64)>,
}

impl std::fmt::Debug for Blend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blend")
            .field(
                "components",
                &self
                    .components
                    .iter()
                    .map(|(p, w)| (p.name(), *w))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Blend {
    /// Creates a blend; weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty, any weight is negative, or all
    /// weights are zero.
    pub fn new(components: Vec<(Box<dyn TrafficPattern>, f64)>) -> Blend {
        assert!(!components.is_empty(), "blend needs at least one component");
        let total: f64 = components.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "blend weights must sum to a positive value");
        assert!(
            components.iter().all(|(_, w)| *w >= 0.0),
            "negative blend weight"
        );
        let components = components
            .into_iter()
            .map(|(p, w)| (p, w / total))
            .collect();
        Blend { components }
    }

    /// Which component a sampled packet came from on the last call is not
    /// tracked here; use [`Blend::sample_with_component`] when the caller
    /// needs to tag packets with their pattern id.
    pub fn sample_with_component(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        rng: &mut dyn RngCore,
    ) -> (usize, GlobalEndpoint) {
        let mut x: f64 = rng.gen();
        for (i, (p, w)) in self.components.iter().enumerate() {
            if x < *w || i == self.components.len() - 1 {
                return (i, p.sample_dst(cfg, src, rng));
            }
            x -= *w;
        }
        unreachable!("weights are normalized")
    }
}

impl TrafficPattern for Blend {
    fn name(&self) -> String {
        let parts: Vec<String> = self
            .components
            .iter()
            .map(|(p, w)| format!("{:.2}*{}", w, p.name()))
            .collect();
        format!("blend({})", parts.join("+"))
    }

    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow> {
        let mut flows: Vec<Flow> = Vec::new();
        for (p, w) in &self.components {
            for f in p.flows_from(cfg, src) {
                match flows.iter_mut().find(|g| g.dst == f.dst) {
                    Some(g) => g.rate += f.rate * w,
                    None => flows.push(Flow {
                        dst: f.dst,
                        rate: f.rate * w,
                    }),
                }
            }
        }
        flows
    }

    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        rng: &mut dyn RngCore,
    ) -> GlobalEndpoint {
        self.sample_with_component(cfg, src, rng).1
    }

    fn node_symmetric(&self) -> bool {
        self.components.iter().all(|(p, _)| p.node_symmetric())
    }
}

/// Bit-complement traffic: node `(x, y, z)` sends to the node at the
/// torus-complement coordinate `(kx−1−x, ky−1−y, kz−1−z)` — a classic
/// adversarial pattern for dimension-order routing.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitComplement;

fn complement_dst(cfg: &MachineConfig, src: GlobalEndpoint) -> GlobalEndpoint {
    let c = cfg.node_coord(src);
    let n = NodeCoord::new(
        cfg.shape.k(Dim::X) - 1 - c.x,
        cfg.shape.k(Dim::Y) - 1 - c.y,
        cfg.shape.k(Dim::Z) - 1 - c.z,
    );
    GlobalEndpoint {
        node: cfg.shape.id(n),
        ep: src.ep,
    }
}

impl TrafficPattern for BitComplement {
    fn name(&self) -> String {
        "bit-complement".into()
    }

    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow> {
        vec![Flow {
            dst: complement_dst(cfg, src),
            rate: 1.0,
        }]
    }

    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        _rng: &mut dyn RngCore,
    ) -> GlobalEndpoint {
        complement_dst(cfg, src)
    }

    fn node_symmetric(&self) -> bool {
        // Reflection, not translation: loads must be computed per source.
        false
    }
}

/// Transpose traffic on cubic tori: node `(x, y, z)` sends to `(y, z, x)`.
/// Concentrates turns and stresses the on-chip local routes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Transpose;

fn transpose_dst(cfg: &MachineConfig, src: GlobalEndpoint) -> GlobalEndpoint {
    let c = cfg.node_coord(src);
    let n = NodeCoord::new(c.y, c.z, c.x);
    GlobalEndpoint {
        node: cfg.shape.id(n),
        ep: src.ep,
    }
}

impl TrafficPattern for Transpose {
    fn name(&self) -> String {
        "transpose".into()
    }

    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow> {
        assert_cubic(cfg);
        vec![Flow {
            dst: transpose_dst(cfg, src),
            rate: 1.0,
        }]
    }

    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        _rng: &mut dyn RngCore,
    ) -> GlobalEndpoint {
        assert_cubic(cfg);
        transpose_dst(cfg, src)
    }

    fn node_symmetric(&self) -> bool {
        false
    }
}

fn assert_cubic(cfg: &MachineConfig) {
    let k = cfg.shape.k(Dim::X);
    assert!(
        cfg.shape.k(Dim::Y) == k && cfg.shape.k(Dim::Z) == k,
        "transpose traffic requires a cubic torus"
    );
}

/// An explicit node-level permutation: every endpoint of node `i` sends to
/// its counterpart on node `perm[i]`.
#[derive(Debug, Clone)]
pub struct NodePermutation {
    perm: Vec<u32>,
}

impl NodePermutation {
    /// Creates a permutation pattern.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..perm.len()`.
    pub fn new(perm: Vec<u32>) -> NodePermutation {
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            assert!(
                (p as usize) < perm.len(),
                "permutation entry {p} out of range"
            );
            assert!(!seen[p as usize], "duplicate permutation entry {p}");
            seen[p as usize] = true;
        }
        NodePermutation { perm }
    }

    fn dst(&self, src: GlobalEndpoint) -> GlobalEndpoint {
        GlobalEndpoint {
            node: NodeId(self.perm[src.node.0 as usize]),
            ep: src.ep,
        }
    }
}

impl TrafficPattern for NodePermutation {
    fn name(&self) -> String {
        "node-permutation".into()
    }

    fn flows_from(&self, cfg: &MachineConfig, src: GlobalEndpoint) -> Vec<Flow> {
        assert_eq!(
            self.perm.len(),
            cfg.shape.num_nodes(),
            "permutation sized for another machine"
        );
        vec![Flow {
            dst: self.dst(src),
            rate: 1.0,
        }]
    }

    fn sample_dst(
        &self,
        cfg: &MachineConfig,
        src: GlobalEndpoint,
        _rng: &mut dyn RngCore,
    ) -> GlobalEndpoint {
        assert_eq!(
            self.perm.len(),
            cfg.shape.num_nodes(),
            "permutation sized for another machine"
        );
        self.dst(src)
    }

    fn node_symmetric(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_core::topology::TorusShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> MachineConfig {
        MachineConfig::new(TorusShape::cube(4))
    }

    fn flows_sum_to_one(pat: &dyn TrafficPattern, cfg: &MachineConfig) {
        for idx in [0usize, 17, cfg.num_endpoints() - 1] {
            let src = cfg.endpoint_at(idx);
            let flows = pat.flows_from(cfg, src);
            let total: f64 = flows.iter().map(|f| f.rate).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{}: rates sum to {total}",
                pat.name()
            );
        }
    }

    #[test]
    fn all_patterns_normalize() {
        let cfg = cfg();
        flows_sum_to_one(&UniformRandom, &cfg);
        flows_sum_to_one(&NHopNeighbor::new(1), &cfg);
        flows_sum_to_one(&NHopNeighbor::new(2), &cfg);
        flows_sum_to_one(&Tornado, &cfg);
        flows_sum_to_one(&ReverseTornado, &cfg);
        let blend = Blend::new(vec![
            (Box::new(Tornado), 0.3),
            (Box::new(ReverseTornado), 0.7),
        ]);
        flows_sum_to_one(&blend, &cfg);
    }

    #[test]
    fn uniform_never_sends_to_own_node() {
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(0);
        let src = cfg.endpoint_at(33);
        for _ in 0..200 {
            let dst = UniformRandom.sample_dst(&cfg, src, &mut rng);
            assert_ne!(dst.node, src.node);
        }
        for f in UniformRandom.flows_from(&cfg, src) {
            assert_ne!(f.dst.node, src.node);
        }
    }

    #[test]
    fn samples_match_flow_support() {
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(1);
        for pat in [
            &NHopNeighbor::new(1) as &dyn TrafficPattern,
            &NHopNeighbor::new(2),
        ] {
            let src = cfg.endpoint_at(5);
            let flows = pat.flows_from(&cfg, src);
            for _ in 0..200 {
                let dst = pat.sample_dst(&cfg, src, &mut rng);
                assert!(
                    flows.iter().any(|f| f.dst == dst),
                    "{}: sampled {dst} off-support",
                    pat.name()
                );
            }
        }
    }

    #[test]
    fn one_hop_neighbor_counts() {
        // On a 4^3 torus, the 1-hop box holds 3^3 - 1 = 26 distinct nodes.
        let cfg = cfg();
        let src = cfg.endpoint_at(0);
        let flows = NHopNeighbor::new(1).flows_from(&cfg, src);
        assert_eq!(flows.len(), 26 * cfg.endpoints_per_node());
    }

    #[test]
    fn two_hop_wraps_whole_small_torus() {
        // n=2 on k=4 covers every node except the source (aliasing dedup).
        let cfg = cfg();
        let src = cfg.endpoint_at(0);
        let flows = NHopNeighbor::new(2).flows_from(&cfg, src);
        assert_eq!(flows.len(), 63 * cfg.endpoints_per_node());
    }

    #[test]
    fn tornado_is_reverse_of_reverse() {
        let cfg = MachineConfig::new(TorusShape::cube(8));
        let mut rng = StdRng::seed_from_u64(0);
        for idx in [0usize, 100, 511] {
            let src = cfg.endpoint_at(idx * cfg.endpoints_per_node());
            let fwd = Tornado.sample_dst(&cfg, src, &mut rng);
            let back = ReverseTornado.sample_dst(&cfg, fwd, &mut rng);
            assert_eq!(back.node, src.node, "reverse tornado must undo tornado");
        }
    }

    #[test]
    fn tornado_offset_is_half_ring_minus_one() {
        let cfg = MachineConfig::new(TorusShape::cube(8));
        let src = cfg.endpoint_at(0); // node (0,0,0)
        let dst = Tornado.sample_dst(&cfg, src, &mut StdRng::seed_from_u64(0));
        assert_eq!(cfg.shape.coord(dst.node), NodeCoord::new(3, 3, 3));
    }

    #[test]
    fn blend_extremes_match_components() {
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(9);
        let blend = Blend::new(vec![
            (Box::new(Tornado), 1.0),
            (Box::new(ReverseTornado), 0.0),
        ]);
        let src = cfg.endpoint_at(7);
        for _ in 0..50 {
            assert_eq!(
                blend.sample_dst(&cfg, src, &mut rng),
                Tornado.sample_dst(&cfg, src, &mut rng)
            );
        }
    }

    #[test]
    fn blend_components_tagged() {
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(2);
        let blend = Blend::new(vec![
            (Box::new(Tornado), 0.5),
            (Box::new(ReverseTornado), 0.5),
        ]);
        let src = cfg.endpoint_at(3);
        let mut counts = [0u32; 2];
        for _ in 0..1000 {
            let (c, _) = blend.sample_with_component(&cfg, src, &mut rng);
            counts[c] += 1;
        }
        assert!(
            counts[0] > 350 && counts[1] > 350,
            "blend skewed: {counts:?}"
        );
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let cfg = MachineConfig::new(TorusShape::cube(4));
        let mut rng = StdRng::seed_from_u64(0);
        for idx in [0usize, 17, 63 * 16] {
            let src = cfg.endpoint_at(idx);
            let there = BitComplement.sample_dst(&cfg, src, &mut rng);
            let back = BitComplement.sample_dst(&cfg, there, &mut rng);
            assert_eq!(back.node, src.node);
        }
    }

    #[test]
    fn transpose_cycles_in_three() {
        let cfg = MachineConfig::new(TorusShape::cube(4));
        let mut rng = StdRng::seed_from_u64(0);
        let src = cfg.endpoint_at(7 * 16 + 3);
        let a = Transpose.sample_dst(&cfg, src, &mut rng);
        let b = Transpose.sample_dst(&cfg, a, &mut rng);
        let c = Transpose.sample_dst(&cfg, b, &mut rng);
        assert_eq!(c.node, src.node, "transpose^3 = identity");
    }

    #[test]
    #[should_panic(expected = "cubic")]
    fn transpose_rejects_rectangles() {
        let cfg = MachineConfig::new(TorusShape::new(4, 2, 2));
        let mut rng = StdRng::seed_from_u64(0);
        Transpose.sample_dst(&cfg, cfg.endpoint_at(0), &mut rng);
    }

    #[test]
    #[should_panic(expected = "duplicate permutation")]
    fn bad_permutation_rejected() {
        NodePermutation::new(vec![0, 0, 1]);
    }
}
