//! # anton-pack
//!
//! Packaging model of Anton 2 machines (Figure 2 of *"Unifying on-chip and
//! inter-node switching within the Anton 2 network"*).
//!
//! Each nodecard carries one ASIC and mates with a backplane holding 16
//! nodecards in a 4×4×1 arrangement; torus channels between nodecards on
//! the same backplane are routed entirely in backplane traces, and all other
//! channels are cabled from the rear of the backplane. Eight backplanes
//! mount into a rack. The flexibility of the cabling lets the single
//! backplane design serve machines from 4×4×1 up to 16×16×16 nodes.
//!
//! The model assigns every torus channel a physical medium (trace or cable,
//! with a length) and summarizes the cable plant, reproducing the paper's
//! packaging constraints: a 512-node machine uses 32 backplanes in 4 racks,
//! and X/Y neighbors within a backplane tile need no cables at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;

use anton_core::topology::{Dim, NodeCoord, Sign, TorusDir, TorusShape};

/// Nodes per backplane along X.
pub const BACKPLANE_X: u8 = 4;
/// Nodes per backplane along Y.
pub const BACKPLANE_Y: u8 = 4;
/// Backplanes per rack.
pub const BACKPLANES_PER_RACK: u8 = 8;

/// Signal propagation speed in PCB traces and cables (ns per cm).
pub const NS_PER_CM: f64 = 0.056;

/// Identifier of a backplane: the tile coordinates and its Z position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackplaneId {
    /// X tile (node x / 4).
    pub bx: u8,
    /// Y tile (node y / 4).
    pub by: u8,
    /// Z coordinate (one Z layer per backplane).
    pub z: u8,
}

/// Identifier of a rack: a column of up to eight backplanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId {
    /// X tile.
    pub bx: u8,
    /// Y tile.
    pub by: u8,
    /// Z group (z / 8).
    pub zg: u8,
}

/// The physical realization of one torus channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkMedium {
    /// Routed entirely within a backplane PCB.
    BackplaneTrace {
        /// Trace length in centimeters (including the nodecard stubs).
        length_cm: f64,
    },
    /// A cable between two backplanes of the same rack.
    IntraRackCable {
        /// Cable length in centimeters.
        length_cm: f64,
    },
    /// A cable between racks.
    InterRackCable {
        /// Cable length in centimeters.
        length_cm: f64,
    },
}

impl LinkMedium {
    /// The medium's length in centimeters.
    pub fn length_cm(&self) -> f64 {
        match self {
            LinkMedium::BackplaneTrace { length_cm }
            | LinkMedium::IntraRackCable { length_cm }
            | LinkMedium::InterRackCable { length_cm } => *length_cm,
        }
    }

    /// Propagation latency contribution in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.length_cm() * NS_PER_CM
    }
}

/// Packaging assignment for a whole machine.
#[derive(Debug, Clone)]
pub struct Packaging {
    shape: TorusShape,
}

impl Packaging {
    /// Creates the packaging model for a machine shape.
    pub fn new(shape: TorusShape) -> Packaging {
        Packaging { shape }
    }

    /// The backplane hosting a node.
    pub fn backplane_of(&self, node: NodeCoord) -> BackplaneId {
        BackplaneId {
            bx: node.x / BACKPLANE_X,
            by: node.y / BACKPLANE_Y,
            z: node.z,
        }
    }

    /// The rack hosting a backplane.
    pub fn rack_of(&self, bp: BackplaneId) -> RackId {
        RackId {
            bx: bp.bx,
            by: bp.by,
            zg: bp.z / BACKPLANES_PER_RACK,
        }
    }

    /// Total backplanes in the machine.
    pub fn num_backplanes(&self) -> usize {
        let tiles_x = self.shape.k(Dim::X).div_ceil(BACKPLANE_X) as usize;
        let tiles_y = self.shape.k(Dim::Y).div_ceil(BACKPLANE_Y) as usize;
        tiles_x * tiles_y * self.shape.k(Dim::Z) as usize
    }

    /// Total racks in the machine.
    pub fn num_racks(&self) -> usize {
        let tiles_x = self.shape.k(Dim::X).div_ceil(BACKPLANE_X) as usize;
        let tiles_y = self.shape.k(Dim::Y).div_ceil(BACKPLANE_Y) as usize;
        let zgroups = self.shape.k(Dim::Z).div_ceil(BACKPLANES_PER_RACK) as usize;
        tiles_x * tiles_y * zgroups
    }

    /// The physical medium of the channel leaving `node` in direction `dir`.
    ///
    /// Both slices of a channel share the same routing, so the slice is not
    /// a parameter.
    pub fn medium(&self, node: NodeCoord, dir: TorusDir) -> LinkMedium {
        let peer = self.shape.neighbor(node, dir);
        let bp_a = self.backplane_of(node);
        let bp_b = self.backplane_of(peer);
        let wraps = self.shape.hop_crosses_dateline(node, dir);
        if bp_a == bp_b {
            // Within one backplane: X/Y traces. The paper's nodecard stubs
            // run 7.1–11.7 cm; backplane runs scale with slot distance.
            let slot_a = (node.x % BACKPLANE_X) + BACKPLANE_X * (node.y % BACKPLANE_Y);
            let slot_b = (peer.x % BACKPLANE_X) + BACKPLANE_X * (peer.y % BACKPLANE_Y);
            let dist = slot_a.abs_diff(slot_b) as f64;
            LinkMedium::BackplaneTrace {
                length_cm: 2.0 * 9.4 + 4.0 * dist,
            }
        } else {
            let rack_a = self.rack_of(bp_a);
            let rack_b = self.rack_of(bp_b);
            if rack_a == rack_b {
                // Z hop (or X/Y to a neighboring tile mounted in the same
                // rack column): cabled on the rear of the backplane.
                let dz = bp_a.z.abs_diff(bp_b.z) as f64;
                let base = 40.0 + 7.0 * dz;
                let length_cm = if wraps { base + 30.0 } else { base };
                LinkMedium::IntraRackCable { length_cm }
            } else {
                // Between racks: longer cables; wraparound links span the
                // row of racks.
                let dr = (rack_a.bx.abs_diff(rack_b.bx)
                    + rack_a.by.abs_diff(rack_b.by)
                    + rack_a.zg.abs_diff(rack_b.zg)) as f64;
                let base = 150.0 + 60.0 * (dr - 1.0).max(0.0);
                let length_cm = if wraps { base + 100.0 } else { base };
                LinkMedium::InterRackCable { length_cm }
            }
        }
    }

    /// Summarizes the machine's cable plant over every bidirectional
    /// physical channel (both slices counted).
    pub fn summary(&self) -> PackagingSummary {
        let mut traces = 0usize;
        let mut intra = 0usize;
        let mut inter = 0usize;
        let mut max_cable_cm = 0.0f64;
        let mut by_length: BTreeMap<u64, usize> = BTreeMap::new();
        for node in self.shape.nodes() {
            for dir in [
                TorusDir::new(Dim::X, Sign::Plus),
                TorusDir::new(Dim::Y, Sign::Plus),
                TorusDir::new(Dim::Z, Sign::Plus),
            ] {
                if self.shape.k(dir.dim) == 1 {
                    continue;
                }
                // Each + direction channel is one bidirectional link; two
                // slices double the physical count.
                let m = self.medium(node, dir);
                let count = 2;
                match m {
                    LinkMedium::BackplaneTrace { .. } => traces += count,
                    LinkMedium::IntraRackCable { length_cm } => {
                        intra += count;
                        max_cable_cm = max_cable_cm.max(length_cm);
                        *by_length.entry(length_cm.round() as u64).or_insert(0) += count;
                    }
                    LinkMedium::InterRackCable { length_cm } => {
                        inter += count;
                        max_cable_cm = max_cable_cm.max(length_cm);
                        *by_length.entry(length_cm.round() as u64).or_insert(0) += count;
                    }
                }
            }
        }
        PackagingSummary {
            backplanes: self.num_backplanes(),
            racks: self.num_racks(),
            traces,
            intra_rack_cables: intra,
            inter_rack_cables: inter,
            max_cable_cm,
            cables_by_length_cm: by_length,
        }
    }
}

/// Cable-plant summary of a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PackagingSummary {
    /// Backplane count.
    pub backplanes: usize,
    /// Rack count.
    pub racks: usize,
    /// Physical channels routed as backplane traces.
    pub traces: usize,
    /// Cables within a rack.
    pub intra_rack_cables: usize,
    /// Cables between racks.
    pub inter_rack_cables: usize,
    /// Longest cable in the machine (cm).
    pub max_cable_cm: f64,
    /// Cable counts bucketed by rounded length (cm) — the "key" of Figure 2.
    pub cables_by_length_cm: BTreeMap<u64, usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(d: Dim, s: Sign) -> TorusDir {
        TorusDir::new(d, s)
    }

    #[test]
    fn figure2_machine_has_32_backplanes_in_4_racks() {
        let p = Packaging::new(TorusShape::cube(8));
        assert_eq!(p.num_backplanes(), 32);
        assert_eq!(p.num_racks(), 4);
        let s = p.summary();
        assert_eq!(s.backplanes, 32);
        assert_eq!(s.racks, 4);
    }

    #[test]
    fn max_machine_is_supported() {
        let p = Packaging::new(TorusShape::cube(16));
        assert_eq!(p.num_backplanes(), 16 * 16 * 16 / 16);
        // 4x4 tiles x 2 z-groups = 32 racks.
        assert_eq!(p.num_racks(), 32);
    }

    #[test]
    fn intra_backplane_xy_links_are_traces() {
        let p = Packaging::new(TorusShape::cube(8));
        let m = p.medium(NodeCoord::new(1, 1, 0), dir(Dim::X, Sign::Plus));
        assert!(matches!(m, LinkMedium::BackplaneTrace { .. }), "{m:?}");
        let m = p.medium(NodeCoord::new(0, 2, 3), dir(Dim::Y, Sign::Plus));
        assert!(matches!(m, LinkMedium::BackplaneTrace { .. }), "{m:?}");
    }

    #[test]
    fn z_links_are_intra_rack_cables() {
        let p = Packaging::new(TorusShape::cube(8));
        for z in 0..8u8 {
            let m = p.medium(NodeCoord::new(0, 0, z), dir(Dim::Z, Sign::Plus));
            assert!(
                matches!(m, LinkMedium::IntraRackCable { .. }),
                "z={z}: {m:?} (all 8 z-layers share one rack)"
            );
        }
    }

    #[test]
    fn tile_crossing_xy_links_are_inter_rack() {
        let p = Packaging::new(TorusShape::cube(8));
        let m = p.medium(NodeCoord::new(3, 0, 0), dir(Dim::X, Sign::Plus));
        assert!(matches!(m, LinkMedium::InterRackCable { .. }), "{m:?}");
        // Wraparound is also inter-rack and longer.
        let w = p.medium(NodeCoord::new(7, 0, 0), dir(Dim::X, Sign::Plus));
        assert!(matches!(w, LinkMedium::InterRackCable { .. }), "{w:?}");
        assert!(w.length_cm() > m.length_cm());
    }

    #[test]
    fn wrap_z_cable_is_longest_in_rack() {
        let p = Packaging::new(TorusShape::cube(8));
        let wrap = p.medium(NodeCoord::new(0, 0, 7), dir(Dim::Z, Sign::Plus));
        let near = p.medium(NodeCoord::new(0, 0, 0), dir(Dim::Z, Sign::Plus));
        assert!(wrap.length_cm() > near.length_cm());
    }

    #[test]
    fn summary_counts_every_physical_channel() {
        // 512 nodes x 3 +directions x 2 slices = 3072 physical channels.
        let p = Packaging::new(TorusShape::cube(8));
        let s = p.summary();
        assert_eq!(s.traces + s.intra_rack_cables + s.inter_rack_cables, 3072);
        // X/Y within tiles: each backplane has 4x4 nodes: 3/4 of +X hops
        // stay inside a tile: 512 * (3/4) * 2 dims * 2 slices = 1536.
        assert_eq!(s.traces, 1536);
        // All +Z links are cables within racks.
        assert_eq!(s.intra_rack_cables, 512 * 2);
        assert_eq!(s.inter_rack_cables, 512 * 2 / 4 * 2);
        assert!(s.max_cable_cm > 0.0);
    }

    #[test]
    fn medium_is_symmetric_between_endpoints() {
        // The + channel of node a toward b and the - channel of b toward a
        // are the same physical link and must get the same medium.
        let p = Packaging::new(TorusShape::cube(8));
        let shape = TorusShape::cube(8);
        for node in shape.nodes().take(64) {
            for d in [
                dir(Dim::X, Sign::Plus),
                dir(Dim::Y, Sign::Plus),
                dir(Dim::Z, Sign::Plus),
            ] {
                let peer = shape.neighbor(node, d);
                let fwd = p.medium(node, d);
                let back = p.medium(peer, d.opposite());
                assert_eq!(fwd, back, "{node} {d}");
            }
        }
    }

    #[test]
    fn latency_scales_with_length() {
        let a = LinkMedium::BackplaneTrace { length_cm: 20.0 };
        let b = LinkMedium::InterRackCable { length_cm: 200.0 };
        assert!((b.latency_ns() / a.latency_ns() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn small_machine_fits_one_backplane() {
        let p = Packaging::new(TorusShape::new(4, 4, 1));
        assert_eq!(p.num_backplanes(), 1);
        assert_eq!(p.num_racks(), 1);
        let s = p.summary();
        assert_eq!(s.inter_rack_cables, 0);
        assert_eq!(
            s.intra_rack_cables, 0,
            "a 4x4x1 machine needs no cables at all"
        );
    }
}
